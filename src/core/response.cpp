#include "core/response.hpp"

#include <algorithm>

#include "core/ordering.hpp"
#include "core/storage.hpp"
#include "rel/ops.hpp"
#include "xml/writer.hpp"

namespace hxrc::core {

ResponseBuilder::ResponseBuilder(const Partition& partition, const rel::Database& db)
    : partition_(partition), db_(db) {}

namespace {

/// A tag or CLOB event in the serialized output stream.
struct Event {
  OrderId position = 0;
  int phase = 0;        // 0 = open tag, 1 = CLOB payload, 2 = close tag
  std::int64_t minor = 0;  // clob_seq for payloads; -depth for close tags
  rel::ClobId clob = -1;
  const std::string* tag = nullptr;

  bool operator<(const Event& other) const noexcept {
    if (position != other.position) return position < other.position;
    if (phase != other.phase) return phase < other.phase;
    return minor < other.minor;
  }
};

}  // namespace

std::string ResponseBuilder::build_document(ObjectId object,
                                            const rel::ReadView* view) const {
  const rel::Table& clobs = db_.require_table(kAttrClobsTable);
  const rel::Index* clob_index = clobs.index("idx_clob_object");
  return assemble(
      rel::index_scan(clobs, *clob_index, rel::Key{{rel::Value(object)}}, view));
}

std::string ResponseBuilder::build_document(ObjectId object,
                                            std::span<const OrderId> attribute_orders,
                                            const rel::ReadView* view) const {
  const rel::Table& clobs = db_.require_table(kAttrClobsTable);
  const rel::Index* clob_index = clobs.index("idx_clob_object");
  rel::ResultSet clob_rows =
      rel::index_scan(clobs, *clob_index, rel::Key{{rel::Value(object)}}, view);
  // Project to the requested attribute orders.
  const std::size_t order_col = clob_rows.column("order_id");
  std::vector<rel::Row> kept;
  for (rel::Row& row : clob_rows.rows) {
    const OrderId order = row[order_col].as_int();
    for (const OrderId wanted : attribute_orders) {
      if (order == wanted) {
        kept.push_back(std::move(row));
        break;
      }
    }
  }
  clob_rows.rows = std::move(kept);
  return assemble(clob_rows);
}

std::string ResponseBuilder::assemble(const rel::ResultSet& clob_rows) const {
  const rel::Table& ancestors = db_.require_table(kOrderAncestorsTable);
  const rel::Index* anc_index = ancestors.index("idx_anc_by_node");

  if (clob_rows.empty()) return {};
  const std::size_t order_col = clob_rows.column("order_id");
  const std::size_t seq_col = clob_rows.column("clob_seq");
  const std::size_t id_col = clob_rows.column("clob_id");

  // Step 2: required ancestors = distinct ancestors of the CLOB orders.
  // The join uses only the (order_id) index — CLOB payloads are not touched
  // until the final concatenation (§5).
  rel::ResultSet anc_rows = rel::index_join(clob_rows, {order_col}, ancestors, *anc_index);
  anc_rows = rel::distinct_on(anc_rows, {anc_rows.column("anc_order")});

  // Step 3: join with schema_order for tags and last-child orders. The
  // ordered-node vector mirrors the schema_order table row-for-row, so the
  // join is a direct positional lookup.
  const auto& ordered = partition_.ordered_nodes();

  std::vector<Event> events;
  events.reserve(clob_rows.size() + anc_rows.size() * 2);
  const std::size_t anc_order_col = anc_rows.column("anc_order");
  for (const rel::Row& row : anc_rows.rows) {
    const OrderId order = row[anc_order_col].as_int();
    const OrderedNode& node = ordered[static_cast<std::size_t>(order)];
    events.push_back(Event{node.order, 0, 0, -1, &node.tag});
    events.push_back(Event{node.last_child, 2, -node.depth, -1, &node.tag});
  }
  for (const rel::Row& row : clob_rows.rows) {
    events.push_back(Event{row[order_col].as_int(), 1, row[seq_col].as_int(),
                           row[id_col].as_int(), nullptr});
  }

  // Step 4: sort and concatenate.
  std::sort(events.begin(), events.end());
  std::string out;
  for (const Event& event : events) {
    switch (event.phase) {
      case 0:
        xml::append_open_tag(out, *event.tag, {});
        break;
      case 1:
        out += db_.clobs().get(event.clob);
        break;
      case 2:
        xml::append_close_tag(out, *event.tag);
        break;
      default:
        break;
    }
  }
  return out;
}

std::string ResponseBuilder::build_response(std::span<const ObjectId> objects,
                                            const rel::ReadView* view) const {
  std::string out = "<results>";
  for (const ObjectId object : objects) {
    out += "<result objectID=\"" + std::to_string(object) + "\">";
    out += build_document(object, view);
    out += "</result>";
  }
  out += "</results>";
  return out;
}

}  // namespace hxrc::core
