// The object query process (§4, Fig. 4).
//
// Queries are first "shredded" into flat criteria (one record per query
// attribute with its required element and child-attribute counts, plus one
// record per query element) — the paper stages these in temporary tables.
// The pipeline is then entirely set-based:
//
//   1. element matching   — join each query element against elem_data via
//                           the element-definition index, apply the value
//                           predicate (typed numeric vs. string);
//   2. instance counting  — group matches by attribute *instance* and keep
//                           instances whose distinct matched-element count
//                           equals the attribute's required count;
//   3. sub-attribute roll-up — join satisfied child instances with the
//                           instance inverted list to credit enclosing
//                           instances, grouping by distinct child criteria
//                           satisfied; repeated from the deepest query level
//                           to the top. The loop is bounded by the *query*
//                           depth — data recursion never enters the plan,
//                           which is the point of the inverted list;
//   4. object counting    — an object qualifies when it has an instance
//                           satisfying every top-level query attribute.
//
// When the query has no sub-attribute criteria and every referenced
// attribute is single-instance, the engine takes the simplified fast path
// the paper mentions: one pass grouped directly by object id (§4).
#pragma once

#include <vector>

#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/query.hpp"
#include "core/registry.hpp"
#include "core/thesaurus.hpp"
#include "rel/database.hpp"

namespace hxrc::core {

struct EngineOptions {
  /// Allow the simplified single-pass plan when the query shape permits.
  bool enable_fastpath = true;
  /// Evaluate criteria in the order the query states them instead of by
  /// estimated selectivity. Disables the cardinality-ordered pipeline's
  /// reordering (results are identical either way; property tests
  /// cross-check the two orders against the DOM oracle).
  bool force_query_order = false;
  /// Optional ontology: criteria whose (name, source) does not resolve to a
  /// definition are retried through these synonyms (§3). Not owned; must
  /// outlive the engine.
  const Thesaurus* thesaurus = nullptr;
};

/// Diagnostics about how a query was executed (used by the E4 ablation and
/// the pipeline-observability tests).
struct QueryPlanInfo {
  bool fast_path = false;
  std::size_t query_nodes = 0;
  std::size_t query_elements = 0;
  std::size_t rollup_levels = 0;
  /// Rows that satisfied an element criterion (pre-intersection). With
  /// early exit this reflects work actually done, not the full match set.
  std::size_t candidate_rows = 0;
  /// Base-table rows visited by index probes (bucket rows the pipeline
  /// evaluated in place — never copied).
  std::size_t rows_scanned = 0;
  /// Index lookups issued.
  std::size_t index_probes = 0;
  /// Rows copied out of the pipeline: retained candidate-instance refs
  /// plus the final object ids. The non-materializing pipeline keeps this
  /// a small fraction of rows_scanned.
  std::size_t rows_materialized = 0;
};

/// The shredded query criteria ("temporary tables" in Fig. 4); defined in
/// engine.cpp.
struct QueryShredded;

/// Snapshot context for one engine run. The MVCC read path passes the
/// pinned snapshot's frozen registry and per-table watermarks so the whole
/// pipeline — criterion resolution, selectivity estimation, index probes,
/// row visits — sees exactly one published epoch. Default-constructed, the
/// engine runs against its bound (live) registry and full tables, which is
/// the single-writer/setup behaviour.
struct QueryContext {
  /// Registry to resolve criteria against; nullptr = the engine's own.
  const DefinitionRegistry* registry = nullptr;
  /// Thesaurus override; nullptr = EngineOptions::thesaurus.
  const Thesaurus* thesaurus = nullptr;
  /// Snapshot watermarks; nullptr = probe full tables (syncing probes).
  const rel::ReadView* view = nullptr;
};

class QueryEngine {
 public:
  QueryEngine(const Partition& partition, const DefinitionRegistry& registry,
              const rel::Database& db, EngineOptions options = {});

  /// Matching object ids, ascending. Unknown (or invisible) definitions in
  /// the criteria yield an empty result, matching validated-catalog
  /// semantics.
  std::vector<ObjectId> run(const ObjectQuery& query, QueryPlanInfo* info = nullptr) const;

  /// Snapshot-scoped run: lock-free against concurrent commits when `ctx`
  /// carries a ReadView (probes never sync, rows above watermarks are
  /// invisible).
  std::vector<ObjectId> run(const ObjectQuery& query, QueryPlanInfo* info,
                            const QueryContext& ctx) const;

  /// Canonical cache key for the query against `ctx`'s frozen registry and
  /// thesaurus: criteria resolve to interned definition ids through the
  /// same loose lookup the pipeline uses (so two spellings that resolve to
  /// one definition share a key, and user-private visibility is captured
  /// by the resolved ids themselves), sibling criteria are sorted into a
  /// normal form (query order is immaterial to the result), and the prefix
  /// carries a thesaurus-expansion fingerprint. limit/cursor are excluded —
  /// the key names the full id-set, which pagination slices afterwards.
  std::string canonical_key(const ObjectQuery& query, const QueryContext& ctx) const;

 private:
  bool can_fast_path(const QueryShredded& shredded,
                     const DefinitionRegistry& registry) const;
  std::vector<ObjectId> run_fast(const QueryShredded& shredded, QueryPlanInfo* info,
                                 const QueryContext& ctx) const;
  std::vector<ObjectId> run_general(const QueryShredded& shredded, QueryPlanInfo* info,
                                    const QueryContext& ctx) const;

  const Partition& partition_;
  const DefinitionRegistry& registry_;
  const rel::Database& db_;
  EngineOptions options_;
};

}  // namespace hxrc::core
