#include "core/dispatcher.hpp"

#include <optional>
#include <utility>

namespace hxrc::core {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ServiceDispatcher::ServiceDispatcher(MetadataCatalog& catalog, DispatcherConfig config)
    : config_(std::move(config)),
      metrics_(service_request_type_names()),
      catalog_(catalog),
      service_(catalog, &metrics_),
      pool_(config_.workers == 0 ? 1 : config_.workers) {}

int ServiceDispatcher::slot_for(std::string_view type_name) const noexcept {
  const int slot = metrics_.find(type_name);
  return slot >= 0 ? slot : metrics_.find("other");
}

std::future<std::string> ServiceDispatcher::submit(std::string request_xml) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> result = promise->get_future();
  submit_async(std::move(request_xml), [promise](std::string response) {
    promise->set_value(std::move(response));
  });
  return result;
}

std::shared_ptr<const CachedResponse> ServiceDispatcher::try_cached(
    std::string_view request_xml) {
  if (draining_.load(std::memory_order_acquire) || !catalog_.cache_enabled()) {
    return nullptr;
  }
  // Only the read-only types are cacheable; everything else (mutations,
  // stats, malformed requests) must run through the service. The light
  // root-tag scan keeps the miss path parse-free.
  const std::string type = peek_request_type(request_xml);
  if (type != "query" && type != "queryIds" && type != "fetch") {
    catalog_.cache_metrics().bypass.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // timeoutMs="0" is the protocol's deterministic already-expired request —
  // it must produce a timeout response, never a cached success.
  if (peek_timeout_ms(request_xml) == 0) {
    catalog_.cache_metrics().bypass.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const Clock::time_point started = Clock::now();
  const MetadataCatalog::ReadGuard guard(catalog_);
  // unique_ptr::get() through the const snapshot still yields a mutable
  // segment — the cache is internally synchronized (sharded mutexes).
  QueryCacheSegment* segment = guard.snapshot().cache.get();
  if (segment == nullptr) return nullptr;
  std::shared_ptr<const CachedResponse> hit = segment->find_response(request_xml);
  if (hit == nullptr) return nullptr;
  // Charge the hit to the same per-type slot a dispatched request would
  // land in: a cached answer is still a handled request.
  util::RequestStats& slot = metrics_.at(static_cast<std::size_t>(slot_for(type)));
  slot.handled.fetch_add(1, std::memory_order_relaxed);
  if (hit->ok) {
    slot.ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot.errors.fetch_add(1, std::memory_order_relaxed);
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - started);
  slot.latency.record(static_cast<std::uint64_t>(elapsed.count()));
  return hit;
}

void ServiceDispatcher::submit_async(std::string request_xml,
                                     std::function<void(std::string)> done,
                                     bool probe_cache) {
  if (auto hit = probe_cache ? try_cached(request_xml) : nullptr) {
    // Served synchronously on the caller's thread: no admission slot, no
    // worker hop, no parsing. The body is copied once into the response
    // string; the epoll front end avoids even that by calling try_cached
    // itself and framing straight from the shared buffer.
    done(hit->body);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    util::RequestStats& slot = metrics_.at(
        static_cast<std::size_t>(slot_for(peek_request_type(request_xml))));
    slot.rejected.fetch_add(1, std::memory_order_relaxed);
    done(error_response(ErrorCode::kDraining, "service is shutting down"));
    return;
  }
  if (config_.read_only) {
    const std::string type = peek_request_type(request_xml);
    if (type == "ingest" || type == "addAttribute" || type == "define" ||
        type == "delete") {
      util::RequestStats& slot = metrics_.at(static_cast<std::size_t>(slot_for(type)));
      slot.handled.fetch_add(1, std::memory_order_relaxed);
      slot.errors.fetch_add(1, std::memory_order_relaxed);
      done(error_response(ErrorCode::kValidation,
                          "read-only replica: mutations are applied only through "
                          "the replication stream"));
      return;
    }
  }

  // Admission: a lock-free bounded counter. fetch_add/compare loop instead
  // of a blind increment so a rejected submission never transiently
  // inflates the depth other admissions see.
  std::size_t depth = pending_.load(std::memory_order_acquire);
  for (;;) {
    if (depth >= config_.max_queue) {
      util::RequestStats& slot = metrics_.at(
          static_cast<std::size_t>(slot_for(peek_request_type(request_xml))));
      slot.rejected.fetch_add(1, std::memory_order_relaxed);
      done(error_response(
          ErrorCode::kOverloaded,
          "admission queue full (" + std::to_string(config_.max_queue) + " pending)"));
      return;
    }
    if (pending_.compare_exchange_weak(depth, depth + 1, std::memory_order_acq_rel)) {
      break;
    }
  }

  // Deadline: per-request timeoutMs (a root-tag attribute, scanned without
  // a DOM) wins over the configured default. timeoutMs="0" expires
  // immediately — the deterministic timeout used by the protocol tests.
  const Clock::time_point admitted = Clock::now();
  std::optional<Clock::time_point> deadline;
  const long request_ms = peek_timeout_ms(request_xml);
  if (request_ms >= 0) {
    deadline = admitted + std::chrono::milliseconds(request_ms);
  } else if (config_.default_timeout.count() > 0) {
    deadline = admitted + config_.default_timeout;
  }

  pool_.submit([this, request = std::move(request_xml), admitted, deadline,
                done = std::move(done)] {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    if (config_.before_execute) config_.before_execute();

    RequestOutcome outcome;
    std::string response;
    bool timed_out = deadline.has_value() && Clock::now() >= *deadline;
    if (timed_out) {
      // Expired while queued: answer without touching the catalog. The
      // type still comes from the light scan so the timeout is attributed
      // to the right slot.
      const std::string type = peek_request_type(request);
      if (metrics_.find(type) >= 0) outcome.type = type;
    } else {
      response = service_.handle(request, &outcome);
      timed_out = deadline.has_value() && Clock::now() >= *deadline;
    }
    if (timed_out) {
      response = error_response(ErrorCode::kTimeout, "deadline exceeded");
      outcome.ok = false;
      outcome.code = ErrorCode::kTimeout;
    }

    util::RequestStats& slot = metrics_.at(static_cast<std::size_t>(slot_for(outcome.type)));
    slot.handled.fetch_add(1, std::memory_order_relaxed);
    if (timed_out) {
      slot.timeouts.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome.ok) {
      slot.ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.errors.fetch_add(1, std::memory_order_relaxed);
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - admitted);
    slot.latency.record(static_cast<std::uint64_t>(elapsed.count()));
    done(std::move(response));
  });
}

void ServiceDispatcher::drain() {
  // Close the admission gate first, then wait. A submission that raced the
  // store was admitted before the gate closed and is covered by wait_idle;
  // everything after it sees draining_ and is rejected up front, so when
  // wait_idle returns no worker can be touching the catalog.
  begin_drain();
  pool_.wait_idle();
  // Epoch quiescence: every worker has unpinned, so this drives reclamation
  // until no retired snapshot or index generation remains. After drain()
  // the catalog holds no deferred-free garbage — shutdown (and the ASan CI
  // job) sees a clean heap.
  catalog_.quiesce_epochs();
}

}  // namespace hxrc::core
