// ServiceDispatcher: the concurrent front door of the catalog service.
//
// A grid metadata catalog is hammered by many clients at once (AMGA-style
// multi-client workloads); one CatalogService::handle call per request on
// the caller's thread does not model that. The dispatcher runs N worker
// threads over util::ThreadPool and adds the service-endpoint disciplines
// the single-shot API lacks:
//
//  * bounded admission queue — at most `max_queue` requests may be waiting;
//    beyond that, submit() immediately resolves to
//    `<catalogResponse status="error" code="overloaded">` instead of
//    letting the backlog grow without bound;
//  * per-request deadlines — a request may carry timeoutMs="N" on its root
//    tag (or inherit `default_timeout`); a request whose deadline passes
//    while queued is answered `code="timeout"` without touching the
//    catalog, and one that finishes past its deadline has its result
//    replaced by the timeout response (the client has given up — late
//    results must not look like successes);
//  * per-request-type metrics — counters and latency histograms
//    (admission→completion, queue wait included), reported through the
//    `stats` request type (see util/metrics.hpp).
//
// MetadataCatalog's MVCC snapshot reads are what make the N workers safe —
// read requests pin an epoch and never block; the dispatcher adds no
// locking of its own beyond the admission counter.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>

#include "core/broker.hpp"
#include "core/catalog.hpp"
#include "core/service.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace hxrc::core {

struct DispatcherConfig {
  /// Worker threads handling requests.
  std::size_t workers = 4;
  /// Bounded admission queue: maximum requests admitted but not yet
  /// executing. Beyond it, submissions are rejected as `overloaded`.
  std::size_t max_queue = 256;
  /// Deadline applied to requests that carry no timeoutMs attribute;
  /// zero = no deadline.
  std::chrono::milliseconds default_timeout{0};
  /// Refuse mutation requests (ingest/addAttribute/define/delete) with
  /// code="validation" before they reach the catalog. Read replicas run
  /// with this set: their only legitimate write path is the replication
  /// apply loop, and a stray client write would silently diverge them from
  /// their primary.
  bool read_only = false;
  /// Test seam: runs on the worker thread before each request is handled.
  /// Lets tests hold workers at a barrier to fill the admission queue or
  /// expire deadlines deterministically.
  std::function<void()> before_execute;
};

class ServiceDispatcher : public RequestBroker {
 public:
  explicit ServiceDispatcher(MetadataCatalog& catalog, DispatcherConfig config = {});

  ServiceDispatcher(const ServiceDispatcher&) = delete;
  ServiceDispatcher& operator=(const ServiceDispatcher&) = delete;

  /// Admits one serialized request. The future always yields a
  /// <catalogResponse> — overload and timeout included; it never throws
  /// protocol errors.
  std::future<std::string> submit(std::string request_xml);

  /// Callback form of submit, for callers that must not block on a future
  /// (the network front end's event loops). `done` is invoked exactly once
  /// with the serialized <catalogResponse>: on a worker thread for handled
  /// requests, or synchronously on the calling thread when admission is
  /// refused (overloaded / draining) or the response is served from the
  /// L2 cache. `probe_cache = false` skips the built-in try_cached probe —
  /// for callers (the network front end) that already probed and missed,
  /// so a miss is not counted twice.
  void submit_async(std::string request_xml, std::function<void(std::string)> done,
                    bool probe_cache = true) override;

  /// L2 probe: answers a read request straight from the current snapshot's
  /// serialized-response cache, keyed by the raw request bytes — no parsing,
  /// no admission, no worker hop. Returns nullptr on miss, on non-cacheable
  /// requests (mutations, stats, timeoutMs="0"), while draining, or when
  /// the cache is disabled. On a hit the per-type metrics slot is charged
  /// exactly as a dispatched request would be (handled / ok / errors /
  /// latency), so `stats` figures stay truthful. The returned buffer is
  /// immutable and epoch-protected — the network front end writes it to the
  /// socket without copying into a response string first.
  std::shared_ptr<const CachedResponse> try_cached(std::string_view request_xml) override;

  /// Synchronous convenience: submit + wait.
  std::string call(std::string request_xml) { return submit(std::move(request_xml)).get(); }

  /// Requests admitted and not yet picked up by a worker.
  std::size_t queue_depth() const noexcept override {
    return pending_.load(std::memory_order_acquire);
  }

  /// Closes the admission gate without waiting: later submissions resolve
  /// to `code="draining"` while already-admitted requests keep executing.
  /// The network front end calls this on SIGTERM so queued frames are
  /// answered `draining` while it flushes in-flight responses, then calls
  /// drain() once the sockets are quiet. Idempotent; draining is permanent.
  void begin_drain() override { draining_.store(true, std::memory_order_release); }

  /// Quiesces the dispatcher: stops admitting (later submissions resolve to
  /// `code="draining"`), then blocks until every already-admitted request
  /// has completed AND epoch reclamation has caught up (no retired snapshot
  /// or index generation remains). After drain() returns no worker touches
  /// the catalog and no deferred frees are pending, so the durability layer
  /// can take its final WAL flush / detach safely (DurableCatalog::close).
  /// Idempotent; draining is permanent.
  void drain() override;

  bool draining() const noexcept override {
    return draining_.load(std::memory_order_acquire);
  }

  /// The admission-queue bound, for the network front end's backpressure
  /// watermarks (stop reading sockets before submissions start bouncing).
  std::size_t max_queue() const noexcept override { return config_.max_queue; }

  const util::MetricsRegistry& metrics() const noexcept { return metrics_; }
  std::size_t workers() const noexcept { return pool_.size(); }

  /// The catalog's cache counters — the network front end charges
  /// inline_served here when it frames a try_cached hit on the event loop.
  util::CacheMetrics& cache_metrics() noexcept { return catalog_.cache_metrics(); }
  util::CacheMetrics* cache_metrics_hook() noexcept override {
    return &catalog_.cache_metrics();
  }

 private:
  int slot_for(std::string_view type_name) const noexcept;

  DispatcherConfig config_;
  util::MetricsRegistry metrics_;
  MetadataCatalog& catalog_;
  CatalogService service_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> draining_{false};
  /// Declared last: destroyed first, so the workers drain and join while
  /// service_/metrics_/pending_ are still alive.
  util::ThreadPool pool_;
};

}  // namespace hxrc::core
