// The snapshot-keyed two-level query cache (per-generation segment).
//
// Grid metadata traffic is read-mostly and repetitive: many clients issue
// the same discovery queries against a slowly-mutating catalog. Since the
// MVCC rework every commit publishes one immutable CatalogSnapshot, so a
// cache keyed by (snapshot generation, canonical query key) is trivially
// correct — an entry can never go stale because its segment lives and dies
// with the snapshot that computed it:
//
//  * L1 (engine level) memoizes the tombstone-filtered, sorted object-id
//    set for a canonicalized query key (criteria order normalized, names
//    interned to resolved definition ids, thesaurus fingerprint included —
//    see QueryEngine::canonical_key). Pagination re-entry via cursors
//    slices the memoized set instead of re-running the Fig. 4 pipeline.
//  * L2 (service level) caches the fully serialized <catalogResponse>
//    bytes keyed by the raw request bytes — a hot repeated query touches
//    no engine code and no XML serialization at all; the network front end
//    copies the cached buffer straight into a connection's write buffer.
//    Negative results (not_found fetches, zero-hit queries) are cached the
//    same way.
//
// One QueryCacheSegment is owned by each CatalogSnapshot (created in
// publish_locked). Invalidation is free-by-construction: a new snapshot
// starts with an empty segment, and the superseded segment is reclaimed
// through util/epoch.hpp with its snapshot once no reader pins the epoch —
// readers never lock against writers and writers never scan the cache.
// Capacity is bounded per shard with second-chance CLOCK eviction
// (util/sharded_cache.hpp); counters aggregate into one shared
// util::CacheMetrics that survives generation turnover.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.hpp"
#include "util/metrics.hpp"
#include "util/sharded_cache.hpp"

namespace hxrc::core {

struct CacheConfig {
  /// Master switch. Off, no segments are allocated and every probe misses
  /// without touching a mutex.
  bool enabled = true;
  /// Shards per level (rounded up to a power of two).
  std::size_t shards = 8;
  /// L1 bounds: memoized id-sets (bytes counted as ids * sizeof(ObjectId)).
  std::size_t l1_max_entries = 4096;
  std::size_t l1_max_bytes = 16u << 20;
  /// L2 bounds: serialized response bytes (key + body).
  std::size_t l2_max_entries = 4096;
  std::size_t l2_max_bytes = 64u << 20;
};

/// L1 value: the full (unpaginated) sorted id-set for a canonical query
/// key, tombstones of the owning snapshot already applied.
struct CachedIdSet {
  std::vector<ObjectId> ids;
};

/// L2 value: one serialized <catalogResponse> plus the outcome it carried,
/// so a cache hit can be attributed to the right metrics counters without
/// re-parsing the body. `error_code` is core::ErrorCode as an int (kept
/// untyped here to avoid a service.hpp include cycle); valid when !ok.
struct CachedResponse {
  std::string body;
  bool ok = true;
  int error_code = 0;
};

/// One snapshot generation's cache: both levels, sharded, bounded.
class QueryCacheSegment {
 public:
  QueryCacheSegment(const CacheConfig& config, util::CacheMetrics* metrics);

  std::shared_ptr<const CachedIdSet> find_ids(std::string_view key) {
    return l1_.find(key);
  }
  void insert_ids(std::string key, std::shared_ptr<const CachedIdSet> ids);

  std::shared_ptr<const CachedResponse> find_response(std::string_view key) {
    return l2_.find(key);
  }
  void insert_response(std::string key, std::shared_ptr<const CachedResponse> response);

  std::size_t l1_entries() const { return l1_.entry_count(); }
  std::size_t l2_entries() const { return l2_.entry_count(); }

 private:
  util::ShardedCache<CachedIdSet> l1_;
  util::ShardedCache<CachedResponse> l2_;
};

}  // namespace hxrc::core
