#include "core/browse.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/catalog.hpp"
#include "core/storage.hpp"

namespace hxrc::core {

std::vector<AttributeSummary> CatalogBrowser::attributes(const std::string& user) const {
  const MetadataCatalog::ReadGuard guard(catalog_);
  const DefinitionRegistry& registry = *guard->defs;
  const rel::Table& instances = catalog_.database().require_table(kAttrInstancesTable);

  // Instance counts per definition, one scan over the snapshot-visible rows.
  std::unordered_map<AttrDefId, std::size_t> counts;
  const std::size_t attr_col = instances.schema().require("attr_id");
  const std::size_t visible = guard->view.visible_rows(instances);
  for (std::size_t i = 0; i < visible; ++i) {
    ++counts[instances.row_unchecked(i)[attr_col].as_int()];
  }

  std::vector<AttributeSummary> out;
  for (const AttributeDef& def : registry.attributes()) {
    if (def.visibility == Visibility::kUser && def.owner != user) continue;
    AttributeSummary summary;
    summary.id = def.id;
    summary.name = def.name;
    summary.source = def.source;
    summary.kind = def.kind;
    summary.parent = def.parent;
    const auto it = counts.find(def.id);
    summary.instances = it == counts.end() ? 0 : it->second;
    out.push_back(std::move(summary));
  }
  std::sort(out.begin(), out.end(), [](const AttributeSummary& a, const AttributeSummary& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.source < b.source;
  });
  return out;
}

std::vector<ElementSummary> CatalogBrowser::elements(AttrDefId attribute) const {
  const MetadataCatalog::ReadGuard guard(catalog_);
  const DefinitionRegistry& registry = *guard->defs;
  const rel::Table& elem_data = catalog_.database().require_table(kElemDataTable);
  const rel::Index* by_def = elem_data.index("idx_elem_def");
  const std::size_t value_col = elem_data.schema().require("value_str");

  std::vector<rel::RowId> scratch;
  std::vector<ElementSummary> out;
  for (const ElementDef& def : registry.elements()) {
    if (def.attribute != attribute) continue;
    ElementSummary summary;
    summary.id = def.id;
    summary.name = def.name;
    summary.source = def.source;
    summary.type = def.type;
    std::map<std::string, std::size_t> distinct;
    scratch.clear();
    guard->view.lookup_into(elem_data, *by_def, rel::Key{{rel::Value(def.id)}}, scratch);
    for (const rel::RowId id : scratch) {
      ++distinct[elem_data.row_unchecked(id)[value_col].as_string()];
      ++summary.values;
    }
    summary.distinct_values = distinct.size();
    out.push_back(std::move(summary));
  }
  std::sort(out.begin(), out.end(), [](const ElementSummary& a, const ElementSummary& b) {
    return a.name < b.name;
  });
  return out;
}

std::vector<ValueCount> CatalogBrowser::top_values(ElemDefId element,
                                                   std::size_t limit) const {
  const MetadataCatalog::ReadGuard guard(catalog_);
  const rel::Table& elem_data = catalog_.database().require_table(kElemDataTable);
  const rel::Index* by_def = elem_data.index("idx_elem_def");
  const std::size_t value_col = elem_data.schema().require("value_str");

  std::map<std::string, std::size_t> counts;
  std::vector<rel::RowId> scratch;
  guard->view.lookup_into(elem_data, *by_def, rel::Key{{rel::Value(element)}}, scratch);
  for (const rel::RowId id : scratch) {
    ++counts[elem_data.row_unchecked(id)[value_col].as_string()];
  }
  std::vector<ValueCount> out;
  out.reserve(counts.size());
  for (const auto& [value, count] : counts) {
    out.push_back(ValueCount{value, count});
  }
  std::stable_sort(out.begin(), out.end(), [](const ValueCount& a, const ValueCount& b) {
    return a.count > b.count;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<ObjectId> CatalogBrowser::query_sorted(const ObjectQuery& q,
                                                   const ResultOrder& order,
                                                   std::size_t offset,
                                                   std::size_t limit) const {
  // One pinned snapshot for the query AND the sort-key probe: the sort keys
  // are exactly the values the matching epoch saw (the old lock-based path
  // had a gap between the two).
  const MetadataCatalog::ReadGuard guard(catalog_);
  std::vector<ObjectId> hits = guard.query(q);
  if (hits.empty()) return hits;

  // Resolve the sort element definition (invisible/unknown: keep id order).
  const DefinitionRegistry& registry = *guard->defs;
  const AttributeDef* attr = registry.find_attribute(
      order.attribute_name, order.attribute_source, kNoAttr, q.user());
  const ElementDef* elem =
      attr == nullptr
          ? nullptr
          : registry.find_element(order.element_name,
                                  order.element_source.empty() ? order.attribute_source
                                                               : order.element_source,
                                  attr->id);

  if (elem != nullptr) {
    // First value of the sort element per hit object.
    const rel::Table& elem_data = catalog_.database().require_table(kElemDataTable);
    const rel::Index* by_def = elem_data.index("idx_elem_def");
    const std::size_t object_col = elem_data.schema().require("object_id");
    const std::size_t str_col = elem_data.schema().require("value_str");
    const std::size_t num_col = elem_data.schema().require("value_num");
    std::unordered_map<ObjectId, rel::Value> sort_key;
    std::vector<rel::RowId> scratch;
    guard->view.lookup_into(elem_data, *by_def, rel::Key{{rel::Value(elem->id)}}, scratch);
    for (const rel::RowId id : scratch) {
      const rel::Row& row = elem_data.row_unchecked(id);
      const ObjectId object = row[object_col].as_int();
      const rel::Value& key = row[num_col].is_null() ? row[str_col] : row[num_col];
      const auto it = sort_key.find(object);
      if (it == sort_key.end() || key.compare(it->second) < 0) {
        sort_key[object] = key;
      }
    }
    std::stable_sort(hits.begin(), hits.end(), [&](ObjectId a, ObjectId b) {
      const auto ia = sort_key.find(a);
      const auto ib = sort_key.find(b);
      const bool has_a = ia != sort_key.end();
      const bool has_b = ib != sort_key.end();
      if (has_a != has_b) return has_a;  // objects lacking the element sort last
      if (!has_a) return false;
      const int c = ia->second.compare(ib->second);
      if (c == 0) return false;
      return order.descending ? c > 0 : c < 0;
    });
  }

  if (offset >= hits.size()) return {};
  hits.erase(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(offset));
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

}  // namespace hxrc::core
