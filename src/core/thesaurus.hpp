// Ontology-backed name resolution (§3).
//
// "By validating dynamic metadata attributes on insert, the catalog
//  provides a consistent, but dynamic set of definitions for query purposes
//  that could also be connected to an ontology for enhanced search
//  capabilities."
//
// The Thesaurus maps alias (name, source) pairs onto canonical definition
// identities. The query engine consults it when a criterion does not
// resolve directly, so scientists can query with community vocabulary
// ("horizontal-resolution") and hit model-specific definitions ("dx"/ARPS).
// Aliases apply to attribute and element names alike.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hxrc::core {

class Thesaurus {
 public:
  struct Term {
    std::string name;
    std::string source;
    bool operator==(const Term&) const = default;
  };

  /// Declares `alias` as a synonym for `canonical`. Later declarations for
  /// the same alias overwrite earlier ones.
  void add_synonym(Term alias, Term canonical) {
    synonyms_[std::move(alias)] = std::move(canonical);
    ++version_;
  }

  void add_synonym(std::string alias_name, std::string alias_source,
                   std::string canonical_name, std::string canonical_source) {
    add_synonym(Term{std::move(alias_name), std::move(alias_source)},
                Term{std::move(canonical_name), std::move(canonical_source)});
  }

  /// Canonical term for an alias; transitive chains are followed (bounded
  /// to guard against accidental cycles). nullopt when unknown.
  std::optional<Term> resolve(const std::string& name, const std::string& source) const {
    Term current{name, source};
    std::optional<Term> found;
    for (int hops = 0; hops < 8; ++hops) {
      const auto it = synonyms_.find(current);
      if (it == synonyms_.end()) break;
      found = it->second;
      current = it->second;
    }
    return found;
  }

  std::size_t size() const noexcept { return synonyms_.size(); }
  bool empty() const noexcept { return synonyms_.empty(); }

  /// Monotone mutation counter: bumps on every add_synonym, including an
  /// overwrite of an existing alias (which leaves size() unchanged).
  /// Canonical query keys embed this as the expansion fingerprint so a
  /// remapped synonym cannot revive a cache entry minted under the old map.
  std::uint64_t version() const noexcept { return version_; }

  /// All (alias, canonical) pairs (unordered); used by persistence.
  std::vector<std::pair<Term, Term>> items() const {
    std::vector<std::pair<Term, Term>> out;
    out.reserve(synonyms_.size());
    for (const auto& [alias, canonical] : synonyms_) out.emplace_back(alias, canonical);
    return out;
  }

 private:
  struct TermHash {
    std::size_t operator()(const Term& term) const noexcept {
      std::size_t h = std::hash<std::string>{}(term.name);
      h ^= std::hash<std::string>{}(term.source) + 0x9e3779b9 + (h << 6) + (h >> 2);
      return h;
    }
  };

  std::unordered_map<Term, Term, TermHash> synonyms_;
  std::uint64_t version_ = 0;
};

}  // namespace hxrc::core
