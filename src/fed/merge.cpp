#include "fed/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/service.hpp"

namespace hxrc::fed {

namespace {

/// Index just past the matching '>' of the tag opening at `pos`, skipping
/// quoted attribute values (an attribute may legally contain '>').
std::size_t tag_close(std::string_view s, std::size_t pos) {
  char quote = 0;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (quote != 0) {
      if (c == quote) quote = 0;
    } else if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '>') {
      return pos + 1;
    }
  }
  throw FedError("unterminated tag in shard response");
}

/// Value of `name="..."` inside the root tag of `xml` (quote-naive on the
/// needle is fine: attribute names never appear inside values we emit).
std::string attr_needle(std::string_view name) {
  std::string needle(" ");
  needle += name;
  needle += "=\"";
  return needle;
}

std::string_view root_attr(std::string_view xml, std::string_view name) {
  if (xml.empty() || xml[0] != '<') throw FedError("shard payload is not XML");
  const std::string_view tag = xml.substr(0, tag_close(xml, 0));
  const std::string needle = attr_needle(name);
  const std::size_t at = tag.find(needle);
  if (at == std::string_view::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = tag.find('"', begin);
  if (end == std::string_view::npos) throw FedError("unterminated attribute");
  return tag.substr(begin, end - begin);
}

std::uint64_t parse_u64(std::string_view text, const char* what) {
  if (text.empty()) throw FedError(std::string("missing ") + what);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') throw FedError(std::string("non-numeric ") + what);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

bool consume(std::string_view s, std::size_t& pos, std::string_view token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  pos += token.size();
  return true;
}

/// Position of the `</result>` matching an already-consumed `<result ...>`
/// opener. Tracks nesting so stored documents containing their own
/// <result> elements cannot desynchronize the scan (response text is
/// XML-escaped, so every '<' begins a real tag).
std::size_t matching_result_close(std::string_view s, std::size_t pos) {
  int depth = 1;
  while (true) {
    pos = s.find('<', pos);
    if (pos == std::string_view::npos) {
      throw FedError("unterminated <result> in shard response");
    }
    if (s.compare(pos, 9, "</result>") == 0) {
      if (--depth == 0) return pos;
      pos += 9;
      continue;
    }
    if (s.compare(pos, 7, "<result") == 0 && pos + 7 < s.size()) {
      const char next = s[pos + 7];
      if (next == '>' || next == ' ' || next == '\t' || next == '/' ||
          next == '\n' || next == '\r') {
        const std::size_t end = tag_close(s, pos);
        if (s[end - 2] != '/') ++depth;  // self-closing tags don't nest
        pos = end;
        continue;
      }
    }
    ++pos;
  }
}

std::string hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Parses one dot-terminated (or end-terminated) hex field.
bool take_hex(std::string_view s, std::size_t& pos, std::uint64_t& value) {
  if (pos >= s.size()) return false;
  std::uint64_t v = 0;
  std::size_t digits = 0;
  while (pos < s.size() && s[pos] != '.') {
    const char c = s[pos];
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
    ++pos;
    ++digits;
  }
  if (digits == 0 || digits > 16) return false;
  if (pos < s.size()) ++pos;  // swallow the dot
  value = v;
  return true;
}

}  // namespace

std::uint32_t placement_shard(std::string_view name, std::uint32_t nshards) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % nshards);
}

ParsedResponse parse_response(std::string_view response) {
  static constexpr std::string_view kOpen = "<catalogResponse";
  static constexpr std::string_view kClose = "</catalogResponse>";
  if (response.rfind(kOpen, 0) != 0) {
    throw FedError("shard response is not a <catalogResponse>");
  }
  const std::size_t body = tag_close(response, 0);
  const std::size_t end = response.rfind(kClose);
  if (end == std::string_view::npos || end < body) {
    throw FedError("shard response envelope is truncated");
  }
  ParsedResponse parsed;
  parsed.payload = response.substr(body, end - body);
  const std::string_view status = root_attr(response, "status");
  if (status == "ok") {
    parsed.ok = true;
    parsed.version = parse_u64(root_attr(response, "version"), "response version");
  } else if (status == "error") {
    parsed.code = std::string(root_attr(response, "code"));
  } else {
    throw FedError("shard response has unknown status '" + std::string(status) +
                   "'");
  }
  return parsed;
}

std::string ok_envelope(std::uint64_t version, std::string_view payload) {
  std::string out = "<catalogResponse status=\"ok\" protocol=\"";
  out += std::to_string(core::kProtocolMajor);
  out += "\" version=\"";
  out += std::to_string(version);
  out += "\">";
  out += payload;
  out += "</catalogResponse>";
  return out;
}

QueryPayload parse_query_payload(std::string_view payload, bool ids_only) {
  QueryPayload page;
  std::size_t pos = 0;
  if (ids_only) {
    if (!consume(payload, pos, "<objectIDs>")) {
      throw FedError("queryIds payload missing <objectIDs>");
    }
    while (consume(payload, pos, "<objectID>")) {
      const std::size_t end = payload.find("</objectID>", pos);
      if (end == std::string_view::npos) {
        throw FedError("unterminated <objectID>");
      }
      page.ids.push_back(parse_u64(payload.substr(pos, end - pos), "objectID"));
      pos = end + 11;
    }
    if (!consume(payload, pos, "</objectIDs>")) {
      throw FedError("queryIds payload missing </objectIDs>");
    }
  } else {
    if (!consume(payload, pos, "<results>")) {
      throw FedError("query payload missing <results>");
    }
    while (consume(payload, pos, "<result objectID=\"")) {
      const std::size_t id_end = payload.find('"', pos);
      if (id_end == std::string_view::npos) {
        throw FedError("unterminated objectID attribute");
      }
      ResultSpan span;
      span.lid = parse_u64(payload.substr(pos, id_end - pos), "objectID");
      std::size_t body = id_end + 1;
      if (!consume(payload, body, ">")) {
        throw FedError("malformed <result> opening tag");
      }
      const std::size_t close = matching_result_close(payload, body);
      span.body = payload.substr(body, close - body);
      page.results.push_back(span);
      pos = close + 9;
    }
    if (!consume(payload, pos, "</results>")) {
      throw FedError("query payload missing </results>");
    }
  }
  if (consume(payload, pos, "<nextCursor>")) {
    const std::size_t end = payload.find("</nextCursor>", pos);
    if (end == std::string_view::npos) throw FedError("unterminated <nextCursor>");
    // Cursor strings are "HXC1.<hex>.<hex>" — no XML-escapable bytes, so
    // the escaped wire form is the literal cursor.
    page.next_cursor = std::string(payload.substr(pos, end - pos));
    pos = end + 13;
  }
  if (pos != payload.size()) {
    throw FedError("trailing bytes after query payload");
  }
  return page;
}

std::string encode_fed_cursor(const FedCursor& cursor) {
  std::string out = "HXF1.";
  out += hex(cursor.shard_count);
  out += '.';
  out += hex(cursor.serving_mask);
  out += '.';
  out += hex(cursor.legs.size());
  for (const FedCursorLeg& leg : cursor.legs) {
    out += '.';
    out += hex(leg.shard);
    out += '.';
    out += hex(leg.epoch);
    out += '.';
    out += hex(leg.after_lid);
  }
  return out;
}

bool decode_fed_cursor(std::string_view text, FedCursor& cursor) {
  if (text.rfind("HXF1.", 0) != 0) return false;
  std::size_t pos = 5;
  std::uint64_t shards = 0, mask = 0, count = 0;
  if (!take_hex(text, pos, shards) || !take_hex(text, pos, mask) ||
      !take_hex(text, pos, count)) {
    return false;
  }
  if (shards == 0 || shards > 64 || count > shards) return false;
  cursor.shard_count = static_cast<std::uint32_t>(shards);
  cursor.serving_mask = mask;
  cursor.legs.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    FedCursorLeg leg;
    std::uint64_t shard = 0;
    if (!take_hex(text, pos, shard) || !take_hex(text, pos, leg.epoch) ||
        !take_hex(text, pos, leg.after_lid)) {
      return false;
    }
    if (shard >= shards) return false;
    leg.shard = static_cast<std::uint32_t>(shard);
    cursor.legs.push_back(leg);
  }
  return pos == text.size();
}

std::string encode_shard_cursor(std::uint64_t epoch, std::uint64_t after_lid) {
  return "HXC1." + hex(epoch) + "." + hex(after_lid);
}

MergeOutput merge_query_pages(const std::vector<MergeInput>& inputs,
                              std::uint32_t nshards, std::size_t limit,
                              bool ids_only) {
  MergeOutput out;
  out.payload = ids_only ? "<objectIDs>" : "<results>";
  std::vector<std::size_t> next(inputs.size(), 0);
  std::size_t taken = 0;
  while (limit == 0 || taken < limit) {
    // Linear head scan: shard counts are small (<= 64), a heap would lose.
    std::size_t best = inputs.size();
    std::uint64_t best_gid = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const MergeInput& in = inputs[i];
      const std::size_t have =
          ids_only ? in.page.ids.size() : in.page.results.size();
      if (next[i] >= have) continue;
      const std::uint64_t lid =
          ids_only ? in.page.ids[next[i]] : in.page.results[next[i]].lid;
      const std::uint64_t gid = gid_of(lid, in.shard, nshards);
      if (best == inputs.size() || gid < best_gid) {
        best = i;
        best_gid = gid;
      }
    }
    if (best == inputs.size()) break;  // every stream drained
    if (ids_only) {
      out.payload += "<objectID>" + std::to_string(best_gid) + "</objectID>";
    } else {
      const ResultSpan& span = inputs[best].page.results[next[best]];
      out.payload += "<result objectID=\"" + std::to_string(best_gid) + "\">";
      out.payload += span.body;
      out.payload += "</result>";
    }
    ++next[best];
    ++taken;
  }
  out.payload += ids_only ? "</objectIDs>" : "</results>";

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const MergeInput& in = inputs[i];
    const std::size_t have = ids_only ? in.page.ids.size() : in.page.results.size();
    const bool leftover = next[i] < have;
    if (!leftover && !in.more) continue;  // shard fully consumed
    FedCursorLeg leg;
    leg.shard = in.shard;
    leg.epoch = in.version;
    if (next[i] == 0) {
      leg.after_lid = kNoLid;
    } else {
      const std::size_t last = next[i] - 1;
      leg.after_lid = ids_only ? in.page.ids[last] : in.page.results[last].lid;
    }
    out.legs.push_back(leg);
  }
  out.truncated = !out.legs.empty();
  return out;
}

std::string merge_stats_payload(const std::vector<ShardStatsInput>& shards) {
  static constexpr const char* kSummed[] = {"objects", "attributes", "elements",
                                            "clobs", "deleted"};
  std::uint64_t sums[5] = {0, 0, 0, 0, 0};
  std::uint64_t definitions = 0;
  std::uint64_t version = 0;
  std::string children;
  for (const ShardStatsInput& shard : shards) {
    if (shard.payload.rfind("<stats", 0) != 0) {
      throw FedError("shard stats payload missing <stats>");
    }
    std::string child = "<shard index=\"" + std::to_string(shard.shard) +
                        "\" endpoint=\"" +
                        (shard.replica ? "replica" : "primary") + "\"";
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string_view value = root_attr(shard.payload, kSummed[i]);
      sums[i] += parse_u64(value, kSummed[i]);
      child += attr_needle(kSummed[i]);
      child += value;
      child += "\"";
    }
    const std::uint64_t defs =
        parse_u64(root_attr(shard.payload, "definitions"), "definitions");
    const std::uint64_t ver =
        parse_u64(root_attr(shard.payload, "version"), "version");
    definitions = std::max(definitions, defs);
    version = std::max(version, ver);
    child += " definitions=\"" + std::to_string(defs) + "\" version=\"" +
             std::to_string(ver) + "\"/>";
    children += child;
  }
  std::string payload = "<stats";
  for (std::size_t i = 0; i < 5; ++i) {
    payload += attr_needle(kSummed[i]);
    payload += std::to_string(sums[i]);
    payload += "\"";
  }
  payload += " definitions=\"" + std::to_string(definitions) + "\"";
  payload += " version=\"" + std::to_string(version) + "\"";
  payload += " shards=\"" + std::to_string(shards.size()) + "\">";
  payload += children;
  payload += "</stats>";
  return payload;
}

std::string rewrite_root_attr(std::string_view xml, std::string_view name,
                              std::string_view value) {
  if (xml.empty() || xml[0] != '<') throw FedError("request is not XML");
  const std::string_view tag = xml.substr(0, tag_close(xml, 0));
  const std::string needle = attr_needle(name);
  const std::size_t at = tag.find(needle);
  if (at == std::string_view::npos) {
    throw FedError("request has no " + std::string(name) + " attribute");
  }
  const std::size_t begin = at + needle.size();
  const std::size_t end = tag.find('"', begin);
  if (end == std::string_view::npos) throw FedError("unterminated attribute");
  std::string out(xml.substr(0, begin));
  out += value;
  out += xml.substr(end);
  return out;
}

}  // namespace hxrc::fed
