// WalShipper: the sending half of WAL shipping (runs inside a shard
// primary).
//
// Installed as a DurableCatalog's WalShipObserver, it turns the durability
// layer's callbacks into an ordered stream of replication messages to one
// replica's ReplicationListener:
//
//   connect → read the replica's Hello (its wal_seq + applied-LSN)
//           → catch it up from the on-disk WAL file (fresh replica:
//             Bootstrap with the snapshot file first)
//           → drain the live queue (fsync-acknowledged frames, rotation
//             markers) for as long as the connection lasts.
//
// The observer callbacks run under durability-layer locks, so they only
// enqueue; one shipper thread owns the socket. Overlap between the file
// catch-up and queued live frames is resolved by the replica's LSN
// watermark. A connection failure backs off and reconnects from scratch —
// the Hello/catch-up handshake makes reconnection stateless.
//
// If the replica falls so far behind that the bounded queue would overflow,
// chunk items are dropped and the connection is cut: the reconnect
// catch-up re-reads the dropped range from the WAL file. Rotation markers
// are never dropped (the files they supersede get deleted).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "storage/fs.hpp"
#include "storage/recovery.hpp"

namespace hxrc::fed {

struct ShipperOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Socket send/receive timeout — a wedged replica costs a bounded stall,
  /// then a reconnect.
  std::uint32_t io_timeout_ms = 5000;
  /// Backoff between reconnect attempts.
  std::uint32_t reconnect_ms = 500;
  /// Bound on queued-but-unsent live bytes; past it chunks are dropped and
  /// the next connection catches up from the WAL file instead.
  std::size_t max_queue_bytes = std::size_t{64} << 20;
};

class WalShipper : public storage::WalShipObserver {
 public:
  WalShipper(storage::DurableCatalog& durable, ShipperOptions options,
             storage::Fs& fs = storage::real_fs());
  ~WalShipper() override;

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Installs the observer and spawns the shipping thread.
  void start();

  /// Detaches the observer and joins the thread. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Highest applied-LSN the replica has acknowledged (for logs/tests).
  std::uint64_t acked_lsn() const;

  // WalShipObserver:
  void on_durable(std::uint64_t wal_seq, std::uint64_t first_lsn,
                  std::string_view frames) override;
  void on_rotate(std::uint64_t new_seq, std::uint64_t prev_records,
                 std::uint64_t epoch, const std::string& snapshot) override;

 private:
  struct Item {
    bool rotate = false;
    std::uint64_t wal_seq = 0;
    /// Chunk: LSN of the first record. Rotation: prev_records.
    std::uint64_t lsn = 0;
    std::uint64_t epoch = 0;  // rotation only
    /// Chunk: raw frames. Rotation: snapshot bytes.
    std::string bytes;
  };

  void run();
  /// One connection lifetime; returns on any socket/protocol error.
  void ship_session();
  void enqueue(Item item);

  storage::DurableCatalog& durable_;
  ShipperOptions options_;
  storage::Fs& fs_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Item> queue_;
  std::size_t queue_bytes_ = 0;
  /// Set when chunk items were dropped (overflow); forces the current
  /// connection to die and the next one to catch up from the file.
  bool lost_items_ = false;
  bool stop_ = false;
  std::uint64_t acked_lsn_ = 0;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace hxrc::fed
