#include "fed/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/service.hpp"
#include "fed/merge.hpp"

namespace hxrc::fed {

using core::ErrorCode;
using core::error_response;
using core::peek_request_attr;

namespace {

bool parse_u64_text(std::string_view text, std::uint64_t& value) {
  if (text.empty()) return false;
  value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

std::string shard_list(std::vector<std::uint32_t> shards) {
  std::sort(shards.begin(), shards.end());
  std::string out;
  for (const std::uint32_t s : shards) {
    if (!out.empty()) out += ',';
    out += std::to_string(s);
  }
  return out;
}

std::string unreachable_error(std::uint32_t shard) {
  return error_response(ErrorCode::kUnavailable,
                        "shard " + std::to_string(shard) + " is unreachable");
}

}  // namespace

// ---------------------------------------------------------------------------
// Endpoint pool.

std::unique_ptr<net::BlockingClient> FederationRouter::Endpoint::checkout(
    bool fresh) {
  if (!fresh) {
    std::lock_guard lock(pool_mutex);
    if (!idle.empty()) {
      std::unique_ptr<net::BlockingClient> client = std::move(idle.back());
      idle.pop_back();
      return client;
    }
  }
  auto client = std::make_unique<net::BlockingClient>(host, port);
  client->set_io_timeout(io_timeout_ms);
  return client;
}

void FederationRouter::Endpoint::checkin(
    std::unique_ptr<net::BlockingClient> client) {
  std::lock_guard lock(pool_mutex);
  if (idle.size() < 8) idle.push_back(std::move(client));
}

// ---------------------------------------------------------------------------
// Lifecycle.

FederationRouter::FederationRouter(RouterOptions options)
    : options_(std::move(options)),
      pool_(options_.workers == 0 ? 1 : options_.workers) {
  if (options_.shards.empty() || options_.shards.size() > 64) {
    throw FedError("federation needs 1..64 shards");
  }
  for (const ShardEndpoint& spec : options_.shards) {
    auto shard = std::make_unique<Shard>();
    shard->primary.host = spec.primary_host;
    shard->primary.port = spec.primary_port;
    shard->primary.io_timeout_ms = options_.io_timeout_ms;
    shard->replica.host = spec.replica_host;
    shard->replica.port = spec.replica_port;
    shard->replica.io_timeout_ms = options_.io_timeout_ms;
    shards_.push_back(std::move(shard));
  }
  if (options_.probe_interval_ms > 0) {
    prober_ = std::thread([this] { probe_loop(); });
  }
}

FederationRouter::~FederationRouter() {
  stop_.store(true, std::memory_order_release);
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  drain();
}

// ---------------------------------------------------------------------------
// RequestBroker surface.

void FederationRouter::submit_async(std::string request_xml,
                                    std::function<void(std::string)> done,
                                    bool /*probe_cache*/) {
  if (draining_.load(std::memory_order_acquire)) {
    done(error_response(ErrorCode::kDraining, "service is shutting down"));
    return;
  }
  {
    std::unique_lock lock(drain_mutex_);
    if (inflight_ >= options_.max_queue) {
      lock.unlock();
      done(error_response(ErrorCode::kOverloaded, "router queue is full"));
      return;
    }
    ++inflight_;
  }
  pool_.submit([this, request = std::move(request_xml),
                done = std::move(done)]() mutable {
    std::string response = handle(request);
    done(std::move(response));
    {
      std::lock_guard lock(drain_mutex_);
      --inflight_;
    }
    drain_cv_.notify_all();
  });
}

std::shared_ptr<const core::CachedResponse> FederationRouter::try_cached(
    std::string_view /*request_xml*/) {
  return nullptr;  // shard-side caches answer; the router holds no state
}

std::size_t FederationRouter::queue_depth() const noexcept {
  std::lock_guard lock(drain_mutex_);
  return inflight_;
}

std::size_t FederationRouter::max_queue() const noexcept {
  return options_.max_queue;
}

void FederationRouter::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

void FederationRouter::drain() {
  begin_drain();
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return inflight_ == 0; });
}

bool FederationRouter::draining() const noexcept {
  return draining_.load(std::memory_order_acquire);
}

std::string FederationRouter::route(const std::string& request_xml) {
  return handle(request_xml);
}

// ---------------------------------------------------------------------------
// Routing.

std::string FederationRouter::handle(const std::string& request_xml) {
  try {
    const std::string type = peek_request_attr(request_xml, "type");
    if (type == "query") return scatter_query(request_xml, /*ids_only=*/false);
    if (type == "queryIds") return scatter_query(request_xml, /*ids_only=*/true);
    if (type == "stats") return scatter_stats(request_xml);
    if (type == "ingest") return handle_ingest(request_xml);
    if (type == "define") return handle_define(request_xml);
    if (type == "fetch" || type == "delete" || type == "addAttribute") {
      return handle_point_op(request_xml, type);
    }
    // Unknown / missing type (and malformed XML): let a real service layer
    // produce the canonical parse/validation error.
    try {
      return call_endpoint(shards_[0]->primary, request_xml);
    } catch (const net::SocketError&) {
      return unreachable_error(0);
    }
  } catch (const FedError& e) {
    return error_response(ErrorCode::kValidation,
                          std::string("federation: ") + e.what());
  } catch (const net::SocketError& e) {
    return error_response(ErrorCode::kUnavailable, e.what());
  } catch (const std::exception& e) {
    return error_response(ErrorCode::kValidation, e.what());
  }
}

std::string FederationRouter::handle_ingest(const std::string& request_xml) {
  const std::uint32_t nshards = shard_count();
  const std::string name = peek_request_attr(request_xml, "name");
  const std::uint32_t shard =
      name.empty() ? static_cast<std::uint32_t>(
                         round_robin_.fetch_add(1, std::memory_order_relaxed) %
                         nshards)
                   : placement_shard(name, nshards);
  std::string response;
  try {
    response = call_endpoint(shards_[shard]->primary, request_xml);
  } catch (const net::SocketError&) {
    return unreachable_error(shard);
  }
  const ParsedResponse parsed = parse_response(response);
  if (!parsed.ok) return response;
  // Payload is exactly <objectID>lid</objectID>; rewrite to the gid.
  static constexpr std::string_view kOpen = "<objectID>";
  static constexpr std::string_view kClose = "</objectID>";
  if (parsed.payload.rfind(kOpen, 0) != 0 ||
      parsed.payload.size() <= kOpen.size() + kClose.size()) {
    throw FedError("unexpected ingest payload from shard");
  }
  std::uint64_t lid = 0;
  if (!parse_u64_text(parsed.payload.substr(
          kOpen.size(), parsed.payload.size() - kOpen.size() - kClose.size()),
                      lid)) {
    throw FedError("non-numeric ingest objectID from shard");
  }
  return ok_envelope(parsed.version,
                     "<objectID>" + std::to_string(gid_of(lid, shard, nshards)) +
                         "</objectID>");
}

std::string FederationRouter::handle_point_op(const std::string& request_xml,
                                              std::string_view type) {
  const std::uint32_t nshards = shard_count();
  const std::string id_text = peek_request_attr(request_xml, "objectID");
  std::uint64_t gid = 0;
  if (!parse_u64_text(id_text, gid)) {
    // Missing or malformed id: forward for the canonical validation error.
    try {
      return call_endpoint(shards_[0]->primary, request_xml);
    } catch (const net::SocketError&) {
      return unreachable_error(0);
    }
  }
  const std::uint32_t shard = shard_of(gid, nshards);
  const std::uint64_t lid = lid_of(gid, nshards);
  const std::string shard_request =
      rewrite_root_attr(request_xml, "objectID", std::to_string(lid));
  const bool read = type == "fetch";

  std::string response;
  bool served = false;
  if (read) {
    bool replica = false;
    Endpoint* ep = pick_read_endpoint(shard, replica);
    if (ep != nullptr) {
      try {
        response = call_endpoint(*ep, shard_request);
        served = true;
      } catch (const net::SocketError&) {
      }
    }
    if (!served) {
      // The primary just died (or was already dead): one failover attempt.
      Endpoint* alt = pick_read_endpoint(shard, replica);
      if (alt != nullptr && alt != ep) {
        try {
          response = call_endpoint(*alt, shard_request);
          served = true;
        } catch (const net::SocketError&) {
        }
      }
    }
  } else {
    // Mutations only ever touch the primary — a replica is read-only.
    try {
      response = call_endpoint(shards_[shard]->primary, shard_request);
      served = true;
    } catch (const net::SocketError&) {
    }
  }
  if (!served) return unreachable_error(shard);

  const ParsedResponse parsed = parse_response(response);
  if (!parsed.ok) {
    if (parsed.code == "not_found") {
      // The shard names its local id; the client asked about the gid.
      return error_response(ErrorCode::kNotFound,
                            "object " + id_text + " does not exist");
    }
    return response;
  }
  if (read) {
    const QueryPayload page = parse_query_payload(parsed.payload, false);
    std::string payload = "<results>";
    for (const ResultSpan& span : page.results) {
      payload += "<result objectID=\"" +
                 std::to_string(gid_of(span.lid, shard, nshards)) + "\">";
      payload += span.body;
      payload += "</result>";
    }
    payload += "</results>";
    return ok_envelope(parsed.version, payload);
  }
  return response;  // <deleted/> / <added/> carry no ids
}

std::string FederationRouter::handle_define(const std::string& request_xml) {
  // Serialized so concurrent defines land in the same order on every shard
  // and therefore assign identical attribute ids.
  std::lock_guard define_lock(define_mutex_);
  std::string first_payload;
  std::uint64_t version = 0;
  for (std::uint32_t shard = 0; shard < shard_count(); ++shard) {
    std::string response;
    try {
      response = call_endpoint(shards_[shard]->primary, request_xml);
    } catch (const net::SocketError&) {
      return error_response(ErrorCode::kUnavailable,
                            "shard " + std::to_string(shard) +
                                " is unreachable; define must reach every shard");
    }
    const ParsedResponse parsed = parse_response(response);
    if (!parsed.ok) return response;
    version = std::max(version, parsed.version);
    if (shard == 0) {
      first_payload = std::string(parsed.payload);
    } else if (parsed.payload != first_payload) {
      return error_response(ErrorCode::kValidation,
                            "shards disagree on the defined attribute id — "
                            "federated definitions have diverged");
    }
  }
  return ok_envelope(version, first_payload);
}

std::string FederationRouter::scatter_query(const std::string& request_xml,
                                            bool ids_only) {
  const std::uint32_t nshards = shard_count();
  const std::string cursor_text = peek_request_attr(request_xml, "cursor");
  std::uint64_t limit = 0;
  parse_u64_text(peek_request_attr(request_xml, "limit"), limit);

  FedCursor fed;
  bool resuming = false;
  if (!cursor_text.empty()) {
    if (cursor_text.rfind("HXF1.", 0) != 0 ||
        !decode_fed_cursor(cursor_text, fed)) {
      return error_response(ErrorCode::kValidation,
                            "malformed continuation cursor");
    }
    if (fed.shard_count != nshards) {
      return error_response(ErrorCode::kStaleCursor,
                            "cursor was issued for " +
                                std::to_string(fed.shard_count) +
                                " shards but the federation has " +
                                std::to_string(nshards));
    }
    resuming = true;
  }

  std::vector<Leg> legs;
  std::vector<std::uint32_t> missing;
  std::uint64_t serving_mask = 0;
  if (resuming) {
    for (const FedCursorLeg& fl : fed.legs) {
      bool replica = false;
      Endpoint* ep = pick_read_endpoint(fl.shard, replica);
      const bool was_replica = ((fed.serving_mask >> fl.shard) & 1) != 0;
      if (ep == nullptr || replica != was_replica) {
        return error_response(ErrorCode::kStaleCursor,
                              "the serving set changed under the cursor "
                              "(shard " + std::to_string(fl.shard) +
                                  "); restart the query");
      }
      Leg leg;
      leg.shard = fl.shard;
      leg.ep = ep;
      leg.replica = replica;
      // A leg that consumed nothing re-runs from the start (empty cursor);
      // its epoch pin is re-verified below against the response version.
      leg.request = rewrite_root_attr(
          request_xml, "cursor",
          fl.after_lid == kNoLid ? std::string()
                                 : encode_shard_cursor(fl.epoch, fl.after_lid));
      if (replica) serving_mask |= std::uint64_t{1} << fl.shard;
      legs.push_back(std::move(leg));
    }
  } else {
    for (std::uint32_t shard = 0; shard < nshards; ++shard) {
      bool replica = false;
      Endpoint* ep = pick_read_endpoint(shard, replica);
      if (ep == nullptr) {
        missing.push_back(shard);
        continue;
      }
      Leg leg;
      leg.shard = shard;
      leg.ep = ep;
      leg.replica = replica;
      leg.request = request_xml;
      if (replica) serving_mask |= std::uint64_t{1} << shard;
      legs.push_back(std::move(leg));
    }
    if (legs.empty()) {
      return error_response(ErrorCode::kUnavailable, "no shard is reachable");
    }
  }

  run_legs(legs, /*reads=*/true);

  std::vector<MergeInput> inputs;
  std::uint64_t version = 0;
  for (Leg& leg : legs) {
    if (leg.failed) {
      if (resuming) {
        return error_response(ErrorCode::kStaleCursor,
                              "the serving set changed under the cursor "
                              "(shard " + std::to_string(leg.shard) +
                                  "); restart the query");
      }
      missing.push_back(leg.shard);
      continue;
    }
    const ParsedResponse parsed = parse_response(leg.response);
    if (!parsed.ok) return std::move(leg.response);  // stale_cursor et al.
    if (resuming) {
      for (const FedCursorLeg& fl : fed.legs) {
        if (fl.shard != leg.shard || fl.after_lid != kNoLid) continue;
        if (parsed.version != fl.epoch) {
          return error_response(
              ErrorCode::kStaleCursor,
              "cursor was issued at catalog version " + std::to_string(fl.epoch) +
                  " but shard " + std::to_string(leg.shard) + " is at " +
                  std::to_string(parsed.version));
        }
      }
    }
    MergeInput in;
    in.shard = leg.shard;
    in.version = parsed.version;
    in.page = parse_query_payload(parsed.payload, ids_only);
    in.more = !in.page.next_cursor.empty();
    version = std::max(version, parsed.version);
    // run_legs may have failed a leg over to the replica mid-flight.
    if (leg.replica) serving_mask |= std::uint64_t{1} << leg.shard;
    inputs.push_back(std::move(in));
  }

  const MergeOutput merged =
      merge_query_pages(inputs, nshards, static_cast<std::size_t>(limit), ids_only);
  std::string payload = merged.payload;
  if (!missing.empty()) {
    // Degraded: answer with what the live shards returned, annotated. No
    // cursor — a partial page cannot promise a coherent continuation.
    payload += "<partial code=\"partial\" shards=\"" +
               shard_list(std::move(missing)) + "\"/>";
  } else if (merged.truncated) {
    FedCursor next;
    next.shard_count = nshards;
    next.serving_mask = serving_mask;
    next.legs = merged.legs;
    payload += "<nextCursor>" + encode_fed_cursor(next) + "</nextCursor>";
  }
  return ok_envelope(version, payload);
}

std::string FederationRouter::scatter_stats(const std::string& request_xml) {
  std::vector<Leg> legs;
  std::vector<std::uint32_t> missing;
  for (std::uint32_t shard = 0; shard < shard_count(); ++shard) {
    bool replica = false;
    Endpoint* ep = pick_read_endpoint(shard, replica);
    if (ep == nullptr) {
      missing.push_back(shard);
      continue;
    }
    Leg leg;
    leg.shard = shard;
    leg.ep = ep;
    leg.replica = replica;
    leg.request = request_xml;
    legs.push_back(std::move(leg));
  }
  if (legs.empty()) {
    return error_response(ErrorCode::kUnavailable, "no shard is reachable");
  }
  run_legs(legs, /*reads=*/true);

  std::vector<ShardStatsInput> inputs;
  std::uint64_t version = 0;
  for (Leg& leg : legs) {
    if (leg.failed) {
      missing.push_back(leg.shard);
      continue;
    }
    const ParsedResponse parsed = parse_response(leg.response);
    if (!parsed.ok) return std::move(leg.response);
    ShardStatsInput in;
    in.shard = leg.shard;
    in.replica = leg.replica;
    in.payload = parsed.payload;
    version = std::max(version, parsed.version);
    inputs.push_back(in);
  }
  if (inputs.empty()) {
    return error_response(ErrorCode::kUnavailable, "no shard is reachable");
  }
  std::string payload = merge_stats_payload(inputs);
  if (!missing.empty()) {
    payload += "<partial code=\"partial\" shards=\"" +
               shard_list(std::move(missing)) + "\"/>";
  }
  return ok_envelope(version, payload);
}

// ---------------------------------------------------------------------------
// Endpoint selection + transport.

FederationRouter::Endpoint* FederationRouter::pick_read_endpoint(
    std::uint32_t shard, bool& replica_out) {
  Shard& s = *shards_[shard];
  replica_out = false;
  if (s.primary.alive.load(std::memory_order_acquire)) return &s.primary;
  if (!s.replica.configured() ||
      !s.replica.alive.load(std::memory_order_acquire)) {
    return nullptr;
  }
  // Staleness bound: with the primary dead nothing advances its epoch, so
  // the replica converges on the last epoch the router saw from the
  // primary; until then reads past the bound are refused.
  const std::uint64_t primary_version =
      s.primary.version.load(std::memory_order_relaxed);
  const std::uint64_t replica_version =
      s.replica.version.load(std::memory_order_relaxed);
  if (primary_version > replica_version + options_.max_replica_staleness) {
    return nullptr;
  }
  replica_out = true;
  return &s.replica;
}

std::string FederationRouter::call_endpoint(Endpoint& ep,
                                            const std::string& request) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::unique_ptr<net::BlockingClient> client;
    try {
      // Second attempt forces a fresh dial: pooled connections go stale
      // when the shard restarts between requests.
      client = ep.checkout(attempt > 0);
    } catch (const net::SocketError&) {
      ep.alive.store(false, std::memory_order_release);
      throw;
    }
    try {
      std::string response = client->call(request);
      ep.checkin(std::move(client));
      ep.alive.store(true, std::memory_order_release);
      note_version(ep, response);
      return response;
    } catch (const net::SocketError&) {
      if (attempt > 0) {
        ep.alive.store(false, std::memory_order_release);
        throw;
      }
    }
  }
  throw net::SocketError("unreachable");  // not reached
}

void FederationRouter::run_legs(std::vector<Leg>& legs, bool reads) {
  // Send phase: one request down every shard's pipe before any response is
  // awaited, so the shards evaluate concurrently.
  for (Leg& leg : legs) {
    if (leg.ep == nullptr) {
      leg.failed = true;
      continue;
    }
    try {
      leg.client = leg.ep->checkout(false);
      leg.client->send_request(leg.request);
    } catch (const net::SocketError&) {
      leg.client.reset();  // retried synchronously in the receive phase
    }
  }
  // Receive phase.
  for (Leg& leg : legs) {
    if (leg.failed) continue;
    bool served = false;
    if (leg.client != nullptr) {
      try {
        net::Frame frame = leg.client->recv_frame();
        leg.response = std::move(frame.payload);
        note_version(*leg.ep, leg.response);
        leg.ep->checkin(std::move(leg.client));
        served = true;
      } catch (const net::SocketError&) {
        leg.client.reset();
      }
    }
    if (!served) {
      try {
        leg.response = call_endpoint(*leg.ep, leg.request);
        served = true;
      } catch (const net::SocketError&) {
      }
    }
    if (!served && reads) {
      bool replica = false;
      Endpoint* alt = pick_read_endpoint(leg.shard, replica);
      if (alt != nullptr && alt != leg.ep) {
        try {
          leg.response = call_endpoint(*alt, leg.request);
          leg.ep = alt;
          leg.replica = replica;
          served = true;
        } catch (const net::SocketError&) {
        }
      }
    }
    leg.failed = !served;
  }
}

void FederationRouter::note_version(Endpoint& ep, const std::string& response) {
  std::uint64_t version = 0;
  if (parse_u64_text(peek_request_attr(response, "version"), version)) {
    ep.version.store(version, std::memory_order_relaxed);
  }
}

void FederationRouter::probe_loop() {
  const std::string probe = "<catalogRequest type=\"stats\"/>";
  for (;;) {
    {
      std::unique_lock lock(probe_mutex_);
      probe_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.probe_interval_ms),
                         [this] { return stop_.load(std::memory_order_acquire); });
    }
    if (stop_.load(std::memory_order_acquire)) return;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      for (Endpoint* ep : {&shard->primary, &shard->replica}) {
        if (!ep->configured()) continue;
        try {
          call_endpoint(*ep, probe);  // marks alive + records the epoch
        } catch (const net::SocketError&) {
          // call_endpoint already marked it dead.
        }
        if (stop_.load(std::memory_order_acquire)) return;
      }
    }
  }
}

}  // namespace hxrc::fed
