// ReplicationListener: the receiving half of WAL shipping.
//
// A read replica runs a normal catalog process (MetadataCatalog +
// read-only ServiceDispatcher + CatalogServer) plus this listener on a
// second, internal port. A shard primary's WalShipper connects here,
// bootstraps the replica (snapshot + WAL file catch-up) and then streams
// every fsync-acknowledged WAL batch; the listener applies the records
// through the same storage::apply_record path recovery uses, into the live
// catalog — MVCC snapshot isolation is what lets reads keep flowing while
// records apply.
//
// Consistency model:
//  * apply order == primary log order (TCP FIFO + per-connection serial
//    apply), and records with LSN <= the applied watermark are skipped, so
//    a reconnecting shipper may overlap its catch-up with the live stream
//    freely;
//  * the replica's catalog version mirrors the primary's (apply_record
//    re-pins each record's epoch), so staleness is observable as a version
//    gap and cursors issued by the primary are valid on the replica at the
//    same epoch;
//  * mutations from clients are refused by the read-only dispatcher — the
//    replication stream is the only writer.
//
// The listener reports its watermark through util::ReplicationState; wire
// it into the catalog (set_replication_state) so `stats` answers carry
// <replication wal_seq= applied_lsn= .../> for the router's staleness and
// health probes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/catalog.hpp"
#include "net/socket.hpp"
#include "util/metrics.hpp"

namespace hxrc::fed {

struct ReplicaOptions {
  /// Replication port; 0 = kernel-chosen (read the outcome via port()).
  std::uint16_t port = 0;
  /// Largest replication frame accepted (bootstrap snapshots ride in one
  /// frame, so this bounds catalog size — default 1 GiB).
  std::size_t max_frame_payload = std::size_t{1} << 30;
};

class ReplicationListener {
 public:
  ReplicationListener(core::MetadataCatalog& catalog, ReplicaOptions options = {});
  ~ReplicationListener();

  ReplicationListener(const ReplicationListener&) = delete;
  ReplicationListener& operator=(const ReplicationListener&) = delete;

  /// Binds + listens and spawns the acceptor. Throws net::SocketError when
  /// the port is unavailable.
  void start();

  /// The bound replication port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins connection threads. Connections blocked in
  /// a read are unblocked by closing their sockets. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Watermarks + counters; stable address for the life of the listener
  /// (wire into MetadataCatalog::set_replication_state).
  const util::ReplicationState& state() const noexcept { return state_; }

 private:
  void accept_loop();
  void serve(int fd);
  /// Applies one bootstrap/chunk message; throws to drop the connection.
  void handle_bootstrap(std::string_view payload);
  std::uint64_t handle_chunk(std::string_view payload);

  core::MetadataCatalog& catalog_;
  ReplicaOptions options_;
  util::ReplicationState state_;
  net::Socket listen_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  /// Serializes apply + watermark updates across connections (a reconnect
  /// may briefly overlap the dying connection).
  std::mutex apply_mutex_;
  /// True until the first bootstrap/chunk lands; a fresh replica accepts a
  /// connect-time bootstrap (snapshot load), a non-fresh one only clean
  /// +1 rotations.
  bool fresh_ = true;
  std::mutex conns_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace hxrc::fed
