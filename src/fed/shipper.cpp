#include "fed/shipper.hpp"

#include <poll.h>

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "fed/ship_wire.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace hxrc::fed {

using storage::WalError;

namespace {

/// Whole-frame chunking bound for file catch-up: big enough to amortize
/// framing, small enough that a replica ack cadence exists mid-catch-up.
constexpr std::size_t kCatchupChunkBytes = std::size_t{4} << 20;

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// Byte offset of 0-based record `index` inside a WAL file image whose
/// frame run starts at `pos` (after the magic). The caller guarantees
/// `index` records exist (it scanned first).
std::size_t record_offset(std::string_view file, std::size_t pos, std::uint64_t index) {
  for (std::uint64_t i = 0; i < index; ++i) {
    pos += 8 + read_u32le(file.data() + pos);
  }
  return pos;
}

}  // namespace

WalShipper::WalShipper(storage::DurableCatalog& durable, ShipperOptions options,
                       storage::Fs& fs)
    : durable_(durable), options_(std::move(options)), fs_(fs) {}

WalShipper::~WalShipper() { stop(); }

void WalShipper::start() {
  {
    std::lock_guard lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  // Observer first: everything durable from here on is queued, so a file
  // read taken later can only overlap (LSN-deduped), never miss.
  durable_.set_ship_observer(this);
  worker_ = std::thread([this] { run(); });
}

void WalShipper::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  durable_.set_ship_observer(nullptr);
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t WalShipper::acked_lsn() const {
  std::lock_guard lock(mutex_);
  return acked_lsn_;
}

void WalShipper::on_durable(std::uint64_t wal_seq, std::uint64_t first_lsn,
                            std::string_view frames) {
  Item item;
  item.wal_seq = wal_seq;
  item.lsn = first_lsn;
  item.bytes.assign(frames.data(), frames.size());
  enqueue(std::move(item));
}

void WalShipper::on_rotate(std::uint64_t new_seq, std::uint64_t prev_records,
                           std::uint64_t epoch, const std::string& snapshot) {
  Item item;
  item.rotate = true;
  item.wal_seq = new_seq;
  item.lsn = prev_records;
  item.epoch = epoch;
  item.bytes = snapshot;
  enqueue(std::move(item));
}

void WalShipper::enqueue(Item item) {
  {
    std::lock_guard lock(mutex_);
    queue_bytes_ += item.bytes.size();
    queue_.push_back(std::move(item));
    // Overflow: drop queued CHUNKS (recoverable from the WAL file on the
    // next connection) oldest-first; rotation markers stay (their files
    // get deleted). lost_items_ cuts the current connection so that
    // file-based catch-up actually happens.
    while (queue_bytes_ > options_.max_queue_bytes) {
      auto victim = queue_.begin();
      while (victim != queue_.end() && victim->rotate) ++victim;
      if (victim == queue_.end()) break;  // only rotations left: keep them
      queue_bytes_ -= victim->bytes.size();
      queue_.erase(victim);
      lost_items_ = true;
    }
  }
  work_cv_.notify_one();
}

void WalShipper::run() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (stop_) return;
    }
    try {
      ship_session();
    } catch (const std::exception& e) {
      std::unique_lock lock(mutex_);
      if (!stop_) {
        std::fprintf(stderr, "[shipper] session to %s:%u ended: %s\n",
                     options_.host.c_str(), options_.port, e.what());
      }
    }
    std::unique_lock lock(mutex_);
    work_cv_.wait_for(lock, std::chrono::milliseconds(options_.reconnect_ms),
                      [this] { return stop_; });
    if (stop_) return;
  }
}

void WalShipper::ship_session() {
  net::BlockingClient client(options_.host, options_.port);
  client.set_io_timeout(options_.io_timeout_ms);
  client.set_max_payload(std::size_t{1} << 30);

  net::Frame frame = client.recv_frame();
  if (frame.type != net::FrameType::kWalShip) {
    throw WalError("replica spoke a non-replication frame");
  }
  const HelloMsg hello = decode_hello(frame.payload);
  const bool fresh = hello.wal_seq == 0 && hello.applied_lsn == 0 &&
                     hello.records_applied == 0;

  // Everything appended so far becomes durable — and therefore either
  // already queued (live) or readable from the file (catch-up below).
  durable_.flush();
  const std::uint64_t seq = durable_.wal_seq();
  std::uint64_t cur_seq = seq;
  std::uint64_t start_lsn = 0;  // catch-up sends records with LSN > this

  if (fresh) {
    BootstrapMsg boot;
    boot.wal_seq = seq;
    const std::string snap_path =
        durable_.data_dir() + "/" + storage::snapshot_name(seq);
    if (fs_.exists(snap_path)) boot.snapshot = fs_.read_file(snap_path);
    client.send_frame(net::FrameType::kWalShip, 0, encode_bootstrap(boot));
  } else if (hello.wal_seq == seq) {
    start_lsn = hello.applied_lsn;
  } else if (hello.wal_seq < seq) {
    // The replica is on a superseded sequence whose file may be gone; the
    // live queue still holds the rotation marker(s) and the finished
    // sequence's tail if the replica was connected recently. Drain from
    // its position and let its gap check decide.
    cur_seq = hello.wal_seq;
    start_lsn = hello.applied_lsn;
  } else {
    throw WalError("replica claims wal seq " + std::to_string(hello.wal_seq) +
                   " ahead of primary seq " + std::to_string(seq));
  }

  if (cur_seq == seq) {
    // File-based catch-up: records (start_lsn, end-of-valid-prefix], in
    // whole-frame chunks. A torn tail (reading racing the writer) is just
    // the end of what is visible — the live stream covers the rest.
    const std::string file =
        fs_.read_file(durable_.data_dir() + "/" + storage::wal_name(seq));
    const storage::WalScan scan = storage::scan_wal(file);
    if (scan.records.size() > start_lsn) {
      std::size_t pos = record_offset(file, sizeof storage::kWalMagic, start_lsn);
      std::uint64_t lsn = start_lsn + 1;
      while (pos < scan.valid_bytes) {
        std::size_t end = pos;
        std::uint64_t count = 0;
        while (end < scan.valid_bytes &&
               (end == pos || end - pos < kCatchupChunkBytes)) {
          end += 8 + read_u32le(file.data() + end);
          ++count;
        }
        client.send_frame(
            net::FrameType::kWalShip, 0,
            encode_chunk(seq, lsn, std::string_view(file.data() + pos, end - pos)));
        lsn += count;
        pos = end;
      }
    }
  }

  // Live drain. Acks are consumed opportunistically so the replica's
  // bounded socket buffer can never fill up and deadlock the pipeline.
  for (;;) {
    std::vector<Item> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait_for(lock, std::chrono::milliseconds(100),
                        [this] { return stop_ || lost_items_ || !queue_.empty(); });
      if (stop_) return;
      if (lost_items_) {
        lost_items_ = false;
        throw WalError("live queue overflowed; reconnecting for file catch-up");
      }
      while (!queue_.empty()) {
        queue_bytes_ -= queue_.front().bytes.size();
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    for (Item& item : batch) {
      if (item.rotate) {
        if (item.wal_seq <= cur_seq) continue;  // replica already adopted it
        BootstrapMsg boot;
        boot.wal_seq = item.wal_seq;
        boot.prev_records = item.lsn;
        boot.epoch = item.epoch;
        boot.snapshot = std::move(item.bytes);
        client.send_frame(net::FrameType::kWalShip, 0, encode_bootstrap(boot));
        cur_seq = item.wal_seq;
      } else {
        if (item.wal_seq != cur_seq) continue;  // superseded by catch-up/rotation
        client.send_frame(net::FrameType::kWalShip, 0,
                          encode_chunk(item.wal_seq, item.lsn, item.bytes));
      }
    }
    // Non-blocking ack sweep.
    for (;;) {
      pollfd pfd{client.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) break;
      net::Frame ack_frame = client.recv_frame();
      if (ack_frame.type != net::FrameType::kWalShip) {
        throw WalError("replica spoke a non-replication frame");
      }
      const AckMsg ack = decode_ack(ack_frame.payload);
      std::lock_guard lock(mutex_);
      if (ack.applied_lsn > acked_lsn_) acked_lsn_ = ack.applied_lsn;
    }
  }
}

}  // namespace hxrc::fed
