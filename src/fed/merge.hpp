// Response merging for the federation router: the pure, wire-level half of
// scatter-gather. Everything here is string → string; no sockets, no
// threads — so every merge rule is unit-testable byte-for-byte.
//
// Global id scheme: gid = lid * N + shard (N = shard count). Each shard's
// local ids are dense and ascending, so the mapping is a bijection that
// PRESERVES per-shard ascending order — the k-way merge of per-shard
// ascending streams yields globally ascending gids, and shard_of(gid) is a
// single modulo for point-op routing.
//
// Federated cursors ("HXF1....") encode one leg per shard that still has
// rows: the epoch that shard answered at and the last local id the merged
// page consumed from it. Continuation re-scatters with per-shard
// synthesized "HXC1.<epoch>.<after>" cursors, so each shard's own stale
// check fires if it mutated; a leg that consumed nothing re-runs from the
// start and the router verifies the epoch pin itself. The cursor also
// fingerprints the serving set (which shards answered from a replica) —
// failover between pages switches snapshots, so the cursor goes stale
// rather than silently splicing rows from two histories.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hxrc::fed {

/// A shard response that cannot be merged (malformed envelope, mangled
/// payload). The router maps this to a client-visible error — never to a
/// silently-wrong merge.
class FedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// Global id mapping.

/// Sentinel local id: "this leg consumed nothing yet".
inline constexpr std::uint64_t kNoLid = ~std::uint64_t{0};

inline std::uint64_t gid_of(std::uint64_t lid, std::uint32_t shard,
                            std::uint32_t nshards) {
  return lid * nshards + shard;
}
inline std::uint32_t shard_of(std::uint64_t gid, std::uint32_t nshards) {
  return static_cast<std::uint32_t>(gid % nshards);
}
inline std::uint64_t lid_of(std::uint64_t gid, std::uint32_t nshards) {
  return gid / nshards;
}

/// Ingest placement: FNV-1a of the document name mod N. Stable across
/// router restarts so re-ingest of the same name lands on the same shard.
std::uint32_t placement_shard(std::string_view name, std::uint32_t nshards);

// ---------------------------------------------------------------------------
// Response envelope.

struct ParsedResponse {
  bool ok = false;
  /// status="ok": the catalog epoch the shard answered at.
  std::uint64_t version = 0;
  /// status="error": the machine-readable code ("stale_cursor", ...).
  std::string code;
  /// Inner span of <catalogResponse> (view into the caller's buffer).
  std::string_view payload;
};

/// Parses `<catalogResponse status=... >payload</catalogResponse>`.
/// Throws FedError when the envelope is not recognizable.
ParsedResponse parse_response(std::string_view response);

/// Rebuilds the ok envelope exactly as core::ok_response serializes it, so
/// a router response is byte-identical to a single-node response carrying
/// the same payload.
std::string ok_envelope(std::uint64_t version, std::string_view payload);

// ---------------------------------------------------------------------------
// Query / queryIds payloads.

struct ResultSpan {
  std::uint64_t lid = 0;
  /// The serialized document between <result objectID="..."> and
  /// </result> (view into the caller's buffer).
  std::string_view body;
};

struct QueryPayload {
  std::vector<ResultSpan> results;  // query
  std::vector<std::uint64_t> ids;   // queryIds
  std::string next_cursor;          // empty when the shard is exhausted
};

/// Parses `<results>...</results>[<nextCursor>...</nextCursor>]` or, with
/// ids_only, `<objectIDs>...</objectIDs>[<nextCursor>...</nextCursor>]`.
/// Result spans nest correctly even when a stored document itself contains
/// <result> elements (tag-depth scan, quote-aware).
QueryPayload parse_query_payload(std::string_view payload, bool ids_only);

// ---------------------------------------------------------------------------
// Federated cursor.

struct FedCursorLeg {
  std::uint32_t shard = 0;
  /// Epoch the shard answered at (the pin continuation must revalidate).
  std::uint64_t epoch = 0;
  /// Last local id the merged page consumed, or kNoLid when the leg's rows
  /// all sorted after the page boundary.
  std::uint64_t after_lid = kNoLid;
};

struct FedCursor {
  std::uint32_t shard_count = 0;
  /// Bit i set = shard i was served by its replica. Failover between pages
  /// flips a bit and the cursor goes stale.
  std::uint64_t serving_mask = 0;
  std::vector<FedCursorLeg> legs;
};

/// "HXF1.<shards>.<mask>.<legs>(.<shard>.<epoch>.<after>)*" — hex fields.
std::string encode_fed_cursor(const FedCursor& cursor);
bool decode_fed_cursor(std::string_view text, FedCursor& cursor);

/// Synthesizes the single-shard continuation cursor a shard itself would
/// have issued: "HXC1.<epoch-hex>.<after-hex>".
std::string encode_shard_cursor(std::uint64_t epoch, std::uint64_t after_lid);

// ---------------------------------------------------------------------------
// Merging.

struct MergeInput {
  std::uint32_t shard = 0;
  /// Epoch the shard answered at (ParsedResponse::version).
  std::uint64_t version = 0;
  QueryPayload page;
  /// True when the shard advertised a nextCursor of its own.
  bool more = false;
};

struct MergeOutput {
  /// Merged `<results>...</results>` / `<objectIDs>...</objectIDs>` with
  /// every objectID rewritten lid → gid, globally ascending.
  std::string payload;
  /// True when `limit` cut the merge while rows remained somewhere.
  bool truncated = false;
  /// One leg per shard with remaining rows (valid when truncated).
  std::vector<FedCursorLeg> legs;
};

/// K-way merge of per-shard ascending pages. `limit` == 0 means unbounded.
MergeOutput merge_query_pages(const std::vector<MergeInput>& inputs,
                              std::uint32_t nshards, std::size_t limit,
                              bool ids_only);

// ---------------------------------------------------------------------------
// Stats.

struct ShardStatsInput {
  std::uint32_t shard = 0;
  bool replica = false;
  /// The shard's full `<stats ...>...</stats>` payload.
  std::string_view payload;
};

/// Sums additive figures (objects, attributes, elements, clobs, deleted),
/// takes the max of definitions (define is broadcast) and version, and
/// appends one <shard index= endpoint=/> child per shard.
std::string merge_stats_payload(const std::vector<ShardStatsInput>& shards);

// ---------------------------------------------------------------------------
// Request rewriting.

/// Returns `xml` with the root tag's `name="..."` attribute value replaced
/// (quote-aware; the attribute must exist). Used to rewrite a client's
/// objectID="gid" into the owning shard's objectID="lid".
std::string rewrite_root_attr(std::string_view xml, std::string_view name,
                              std::string_view value);

}  // namespace hxrc::fed
