#include "fed/ship_wire.hpp"

namespace hxrc::fed {

using storage::WalDecoder;
using storage::WalEncoder;
using storage::WalError;

namespace {

WalDecoder begin_decode(std::string_view payload, ShipMsg expected) {
  WalDecoder dec(payload);
  const auto tag = static_cast<ShipMsg>(dec.u8());
  if (tag != expected) {
    throw WalError("replication message kind " +
                   std::to_string(static_cast<int>(tag)) + " where " +
                   std::to_string(static_cast<int>(expected)) + " was expected");
  }
  return dec;
}

void finish_decode(const WalDecoder& dec) {
  if (!dec.done()) {
    throw WalError("replication message carries trailing bytes");
  }
}

}  // namespace

ShipMsg peek_ship_msg(std::string_view payload) {
  if (payload.empty()) throw WalError("empty replication message");
  const auto tag = static_cast<unsigned char>(payload[0]);
  if (tag > static_cast<unsigned char>(ShipMsg::kAck)) {
    throw WalError("unknown replication message kind " + std::to_string(tag));
  }
  return static_cast<ShipMsg>(tag);
}

std::string encode_hello(const HelloMsg& msg) {
  WalEncoder enc;
  enc.u8(static_cast<std::uint8_t>(ShipMsg::kHello));
  enc.u64(msg.wal_seq);
  enc.u64(msg.applied_lsn);
  enc.u64(msg.records_applied);
  return enc.take();
}

HelloMsg decode_hello(std::string_view payload) {
  WalDecoder dec = begin_decode(payload, ShipMsg::kHello);
  HelloMsg msg;
  msg.wal_seq = dec.u64();
  msg.applied_lsn = dec.u64();
  msg.records_applied = dec.u64();
  finish_decode(dec);
  return msg;
}

std::string encode_bootstrap(const BootstrapMsg& msg) {
  WalEncoder enc;
  enc.u8(static_cast<std::uint8_t>(ShipMsg::kBootstrap));
  enc.u64(msg.wal_seq);
  enc.u64(msg.prev_records);
  enc.u64(msg.epoch);
  enc.str(msg.snapshot);
  return enc.take();
}

BootstrapMsg decode_bootstrap(std::string_view payload) {
  WalDecoder dec = begin_decode(payload, ShipMsg::kBootstrap);
  BootstrapMsg msg;
  msg.wal_seq = dec.u64();
  msg.prev_records = dec.u64();
  msg.epoch = dec.u64();
  msg.snapshot = std::string(dec.str());
  finish_decode(dec);
  return msg;
}

std::string encode_chunk(std::uint64_t wal_seq, std::uint64_t first_lsn,
                         std::string_view frames) {
  WalEncoder enc;
  enc.u8(static_cast<std::uint8_t>(ShipMsg::kChunk));
  enc.u64(wal_seq);
  enc.u64(first_lsn);
  enc.str(frames);
  return enc.take();
}

ChunkMsg decode_chunk(std::string_view payload) {
  WalDecoder dec = begin_decode(payload, ShipMsg::kChunk);
  ChunkMsg msg;
  msg.wal_seq = dec.u64();
  msg.first_lsn = dec.u64();
  msg.frames = std::string(dec.str());
  finish_decode(dec);
  return msg;
}

std::string encode_ack(const AckMsg& msg) {
  WalEncoder enc;
  enc.u8(static_cast<std::uint8_t>(ShipMsg::kAck));
  enc.u64(msg.applied_lsn);
  return enc.take();
}

AckMsg decode_ack(std::string_view payload) {
  WalDecoder dec = begin_decode(payload, ShipMsg::kAck);
  AckMsg msg;
  msg.applied_lsn = dec.u64();
  finish_decode(dec);
  return msg;
}

}  // namespace hxrc::fed
