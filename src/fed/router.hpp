// FederationRouter: scatter-gather request broker over N shard catalogs.
//
// The router is a core::RequestBroker, so net::CatalogServer serves it
// exactly like a single-node dispatcher — clients cannot tell a router
// port from a catalog port. Behind the seam, every request is routed over
// the same framed wire protocol to shard processes:
//
//   * ingest           → one shard, picked by FNV-1a(document name) mod N
//                        (round-robin when unnamed); the response's local
//                        objectID is rewritten to gid = lid * N + shard.
//   * fetch/delete/addAttribute
//                      → the owning shard (gid mod N), request objectID
//                        rewritten gid → lid, response ids rewritten back.
//   * define           → broadcast to every shard primary (serialized so
//                        concurrent defines assign identical ids
//                        everywhere).
//   * query/queryIds   → scatter to all shards, k-way merge of the
//                        ascending per-shard pages into one globally
//                        ascending page; pagination continues through a
//                        federated cursor (see merge.hpp).
//   * stats            → scatter + additive merge with per-shard children.
//   * anything else    → forwarded to shard 0 verbatim.
//
// Failure handling: every endpoint (primary and optional replica per
// shard) carries a liveness flag. A failed call marks it dead after one
// fresh-connection retry; a background prober revives it. Reads fail over
// to the shard's replica when the primary is dead and the replica's
// applied epoch is within `max_replica_staleness` of the primary's last
// known epoch. Mutations never fail over (the replica is read-only by
// construction). A scatter leg with no reachable endpoint degrades the
// response to a partial one — `<partial code="partial" shards="..."/>` is
// appended to the merged payload — instead of failing the whole query.
// Point ops on an unreachable shard answer code="unavailable".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.hpp"
#include "net/client.hpp"
#include "util/thread_pool.hpp"

namespace hxrc::fed {

struct ShardEndpoint {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  /// Empty host = the shard has no replica.
  std::string replica_host;
  std::uint16_t replica_port = 0;
};

struct RouterOptions {
  std::vector<ShardEndpoint> shards;
  /// Worker threads executing routed requests.
  std::size_t workers = 4;
  /// Admission bound; past it requests answer code="overloaded".
  std::size_t max_queue = 256;
  /// Per-call socket timeout towards a shard.
  std::uint32_t io_timeout_ms = 5000;
  /// Replica reads are refused when the replica's epoch lags the
  /// primary's last known epoch by more than this many versions.
  std::uint64_t max_replica_staleness = 1024;
  /// Health-probe cadence; 0 disables the prober thread.
  std::uint32_t probe_interval_ms = 500;
};

class FederationRouter : public core::RequestBroker {
 public:
  explicit FederationRouter(RouterOptions options);
  ~FederationRouter() override;

  FederationRouter(const FederationRouter&) = delete;
  FederationRouter& operator=(const FederationRouter&) = delete;

  // core::RequestBroker:
  void submit_async(std::string request_xml,
                    std::function<void(std::string)> done,
                    bool probe_cache) override;
  std::shared_ptr<const core::CachedResponse> try_cached(
      std::string_view request_xml) override;
  std::size_t queue_depth() const noexcept override;
  std::size_t max_queue() const noexcept override;
  void begin_drain() override;
  void drain() override;
  bool draining() const noexcept override;

  /// Synchronous routing entry (shells/tests bypassing the server).
  std::string route(const std::string& request_xml);

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

 private:
  /// One dialable address plus its health state and a small connection
  /// pool (connections are reused across requests; a failed one is
  /// dropped, not returned).
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::uint32_t io_timeout_ms = 0;
    std::atomic<bool> alive{true};
    /// Last catalog epoch observed in a response from this endpoint.
    std::atomic<std::uint64_t> version{0};
    std::mutex pool_mutex;
    std::vector<std::unique_ptr<net::BlockingClient>> idle;

    bool configured() const noexcept { return !host.empty(); }
    std::unique_ptr<net::BlockingClient> checkout(bool fresh);
    void checkin(std::unique_ptr<net::BlockingClient> client);
  };

  struct Shard {
    Endpoint primary;
    Endpoint replica;
  };

  /// One scatter leg in flight.
  struct Leg {
    std::uint32_t shard = 0;
    Endpoint* ep = nullptr;
    bool replica = false;
    std::unique_ptr<net::BlockingClient> client;
    std::string request;
    std::string response;
    bool failed = false;
  };

  std::string handle(const std::string& request_xml);
  std::string handle_point_op(const std::string& request_xml,
                              std::string_view type);
  std::string handle_ingest(const std::string& request_xml);
  std::string handle_define(const std::string& request_xml);
  std::string scatter_query(const std::string& request_xml, bool ids_only);
  std::string scatter_stats(const std::string& request_xml);

  /// Picks the serving endpoint for a read on `shard`: primary when alive,
  /// else a fresh-enough replica, else nullptr. `replica_out` reports the
  /// choice.
  Endpoint* pick_read_endpoint(std::uint32_t shard, bool& replica_out);

  /// One request/response against one endpoint, with a single
  /// fresh-connection retry (pooled connections go stale when a shard
  /// restarts). Marks the endpoint dead and rethrows on failure; records
  /// the response's epoch on success.
  std::string call_endpoint(Endpoint& ep, const std::string& request);

  /// Sends every leg, then receives every leg (shard-side work overlaps).
  /// A failed read leg retries on the shard's other endpoint; `failed`
  /// stays set when no endpoint answered.
  void run_legs(std::vector<Leg>& legs, bool reads);

  void note_version(Endpoint& ep, const std::string& response);
  void probe_loop();

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  util::ThreadPool pool_;
  std::atomic<std::uint64_t> round_robin_{0};
  /// Serializes define broadcasts so every shard assigns the same ids.
  std::mutex define_mutex_;

  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t inflight_ = 0;
  std::atomic<bool> draining_{false};

  std::atomic<bool> stop_{false};
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  std::thread prober_;
};

}  // namespace hxrc::fed
