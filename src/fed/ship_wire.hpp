// Replication wire messages (WAL shipping), carried in net frames of type
// FrameType::kWalShip on a replica's dedicated replication port.
//
// The framing reuses the versioned net header (net/frame.hpp) so the codec,
// length bounds, and corruption handling are shared with the request
// protocol; the payload is WalEncoder binary, tagged with a one-byte
// message kind:
//
//   kHello      replica → shipper, once per connection: where the replica
//               is (wal_seq, applied_lsn) so the shipper can catch it up
//               from the WAL file without resending everything.
//   kBootstrap  shipper → replica: adopt wal sequence `wal_seq`. A fresh
//               replica loads `snapshot` (may be empty for a fresh
//               primary); a non-fresh replica adopts a +1 rotation after
//               verifying it applied all `prev_records` of the finished
//               sequence, and refuses anything else (divergence — restart
//               the replica to resync).
//   kChunk      shipper → replica: raw WAL frames (no file magic) whose
//               first record is `first_lsn` within wal.<wal_seq>.log.
//               Records with LSN <= the replica's applied watermark are
//               skipped, so overlap between the file-based catch-up and
//               the live stream is harmless.
//   kAck        replica → shipper: applied-LSN watermark, after each chunk.
//
// Request ids on kWalShip frames are 0; the stream is strictly ordered, so
// nothing needs matching.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/wal.hpp"

namespace hxrc::fed {

enum class ShipMsg : std::uint8_t {
  kHello = 0,
  kBootstrap = 1,
  kChunk = 2,
  kAck = 3,
};

struct HelloMsg {
  std::uint64_t wal_seq = 0;
  std::uint64_t applied_lsn = 0;
  /// Total records ever applied; 0 + applied_lsn==0 marks a fresh replica.
  std::uint64_t records_applied = 0;
};

struct BootstrapMsg {
  std::uint64_t wal_seq = 0;
  /// Record count of the finished wal.<wal_seq-1>.log for a live rotation;
  /// 0 for a connect-time bootstrap of a fresh replica.
  std::uint64_t prev_records = 0;
  /// Catalog version at the snapshot point; 0 = unknown (connect-time
  /// bootstrap, where the snapshot bytes themselves carry the version).
  std::uint64_t epoch = 0;
  std::string snapshot;
};

struct ChunkMsg {
  std::uint64_t wal_seq = 0;
  std::uint64_t first_lsn = 0;
  std::string frames;
};

struct AckMsg {
  std::uint64_t applied_lsn = 0;
};

/// Kind tag of an encoded message. Throws storage::WalError on an empty or
/// unknown-tag payload.
ShipMsg peek_ship_msg(std::string_view payload);

std::string encode_hello(const HelloMsg& msg);
std::string encode_bootstrap(const BootstrapMsg& msg);
std::string encode_chunk(std::uint64_t wal_seq, std::uint64_t first_lsn,
                         std::string_view frames);
std::string encode_ack(const AckMsg& msg);

/// Decoders take the whole payload (tag included) and throw
/// storage::WalError on a malformed or wrong-kind payload.
HelloMsg decode_hello(std::string_view payload);
BootstrapMsg decode_bootstrap(std::string_view payload);
ChunkMsg decode_chunk(std::string_view payload);
AckMsg decode_ack(std::string_view payload);

}  // namespace hxrc::fed
