#include "fed/replica.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "fed/ship_wire.hpp"
#include "net/frame.hpp"
#include "storage/recovery.hpp"
#include "storage/snapshot.hpp"

namespace hxrc::fed {

using storage::WalError;

namespace {

void write_ship_frame(int fd, std::string_view payload) {
  std::string wire;
  net::append_frame(wire, net::FrameType::kWalShip, 0, payload);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a vanished shipper must surface as EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw net::SocketError(std::string("replication send: ") + std::strerror(errno));
  }
}

net::Frame read_ship_frame(int fd, std::string& inbuf, std::size_t max_payload) {
  for (;;) {
    net::DecodeResult result = net::decode_frame(inbuf, max_payload);
    if (result.status == net::DecodeStatus::kFrame) {
      inbuf.erase(0, result.consumed);
      if (result.frame.type != net::FrameType::kWalShip) {
        throw net::SocketError("non-replication frame on the replication port");
      }
      return std::move(result.frame);
    }
    if (result.status != net::DecodeStatus::kNeedMore) {
      throw net::SocketError("malformed replication frame");
    }
    char buffer[64 * 1024];
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n > 0) {
      inbuf.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) throw net::SocketError("replication peer closed the connection");
    throw net::SocketError(std::string("replication read: ") + std::strerror(errno));
  }
}

}  // namespace

ReplicationListener::ReplicationListener(core::MetadataCatalog& catalog,
                                         ReplicaOptions options)
    : catalog_(catalog), options_(options) {}

ReplicationListener::~ReplicationListener() { stop(); }

void ReplicationListener::start() {
  if (started_.exchange(true)) return;
  listen_ = net::listen_tcp(options_.port);
  port_ = net::local_port(listen_.fd());
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ReplicationListener::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // A concurrent/second stop(): the first one joins everything.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conns_mutex_);
    // SHUT_RDWR unblocks reads; serve() still owns and closes the fds.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

void ReplicationListener::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    std::lock_guard lock(conns_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve(fd); });
  }
  listen_.reset();
}

void ReplicationListener::serve(int fd) {
  net::Socket sock(fd);
  state_.connections.fetch_add(1, std::memory_order_relaxed);
  std::string inbuf;
  try {
    net::set_nodelay(fd);
    HelloMsg hello;
    {
      std::lock_guard lock(apply_mutex_);
      hello.wal_seq = state_.wal_seq.load(std::memory_order_relaxed);
      hello.applied_lsn = state_.applied_lsn.load(std::memory_order_relaxed);
      hello.records_applied =
          state_.records_applied.load(std::memory_order_relaxed);
      if (fresh_) hello.wal_seq = hello.applied_lsn = hello.records_applied = 0;
    }
    write_ship_frame(fd, encode_hello(hello));
    for (;;) {
      const net::Frame frame =
          read_ship_frame(fd, inbuf, options_.max_frame_payload);
      switch (peek_ship_msg(frame.payload)) {
        case ShipMsg::kBootstrap:
          handle_bootstrap(frame.payload);
          break;
        case ShipMsg::kChunk: {
          AckMsg ack;
          ack.applied_lsn = handle_chunk(frame.payload);
          write_ship_frame(fd, encode_ack(ack));
          break;
        }
        default:
          throw WalError("unexpected replication message from shipper");
      }
    }
  } catch (const std::exception& e) {
    // EOF / shutdown / protocol violation all end here: drop the
    // connection; the shipper reconnects and the LSN watermark dedupes.
    if (!stopping_.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "[replica] connection ended: %s\n", e.what());
    }
  }
  {
    // Unregister before the Socket destructor closes the fd, so a racing
    // stop() can never shutdown() a number the kernel has since reused.
    std::lock_guard lock(conns_mutex_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  state_.connections.fetch_sub(1, std::memory_order_relaxed);
}

void ReplicationListener::handle_bootstrap(std::string_view payload) {
  const BootstrapMsg msg = decode_bootstrap(payload);
  std::lock_guard lock(apply_mutex_);
  if (fresh_) {
    if (!msg.snapshot.empty()) {
      if (!storage::snapshot_valid(msg.snapshot)) {
        throw WalError("bootstrap snapshot failed validation");
      }
      storage::load_snapshot(catalog_, msg.snapshot);
    }
    if (msg.epoch != 0) catalog_.restore_version(msg.epoch);
    fresh_ = false;
  } else {
    // Only a clean +1 rotation is adoptable without a snapshot load: the
    // replica must have applied every record of the finished sequence.
    const std::uint64_t cur_seq = state_.wal_seq.load(std::memory_order_relaxed);
    const std::uint64_t cur_lsn = state_.applied_lsn.load(std::memory_order_relaxed);
    if (msg.wal_seq != cur_seq + 1 || cur_lsn != msg.prev_records) {
      throw WalError("replication divergence: bootstrap for wal seq " +
                     std::to_string(msg.wal_seq) + " (prev_records " +
                     std::to_string(msg.prev_records) + ") but replica is at seq " +
                     std::to_string(cur_seq) + " lsn " + std::to_string(cur_lsn) +
                     " — restart the replica to resync");
    }
    if (msg.epoch != 0) catalog_.restore_version(msg.epoch);
  }
  state_.wal_seq.store(msg.wal_seq, std::memory_order_relaxed);
  state_.applied_lsn.store(0, std::memory_order_relaxed);
  state_.applied_epoch.store(catalog_.version(), std::memory_order_relaxed);
  state_.bootstraps.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ReplicationListener::handle_chunk(std::string_view payload) {
  const ChunkMsg msg = decode_chunk(payload);
  std::lock_guard lock(apply_mutex_);
  if (fresh_) throw WalError("replication chunk before bootstrap");
  const std::uint64_t cur_seq = state_.wal_seq.load(std::memory_order_relaxed);
  if (msg.wal_seq != cur_seq) {
    throw WalError("replication chunk for wal seq " + std::to_string(msg.wal_seq) +
                   " while replica is at seq " + std::to_string(cur_seq));
  }
  std::uint64_t applied = state_.applied_lsn.load(std::memory_order_relaxed);
  if (msg.first_lsn > applied + 1) {
    throw WalError("replication gap: chunk starts at lsn " +
                   std::to_string(msg.first_lsn) + " but replica applied " +
                   std::to_string(applied) + " — restart the replica to resync");
  }
  const storage::WalScan scan = storage::scan_wal_frames(msg.frames);
  if (scan.torn_tail) {
    throw WalError("torn replication chunk: " + scan.stop_reason);
  }
  std::uint64_t lsn = msg.first_lsn;
  for (const storage::WalRecord& record : scan.records) {
    if (lsn > applied) {
      // Same replay path as crash recovery: identical records yield an
      // identical catalog, ids asserted to line up (RecoveryError = the
      // stream does not belong to this replica's state).
      storage::apply_record(catalog_, record);
      applied = lsn;
      state_.records_applied.fetch_add(1, std::memory_order_relaxed);
    }
    ++lsn;
  }
  state_.applied_lsn.store(applied, std::memory_order_relaxed);
  state_.applied_epoch.store(catalog_.version(), std::memory_order_relaxed);
  state_.chunks_applied.fetch_add(1, std::memory_order_relaxed);
  return applied;
}

}  // namespace hxrc::fed
