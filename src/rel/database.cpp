#include "rel/database.hpp"

#include "rel/sql/parser.hpp"
#include "rel/sql/planner.hpp"

namespace hxrc::rel {

Table& Database::create_table(const std::string& name, TableSchema schema) {
  if (tables_.count(name) != 0) {
    throw TypeError("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->set_slot(slots_assigned_++);
  table->set_reclaimer(reclaimer_);
  Table& ref = *table;
  tables_.emplace(name, std::move(table));
  return ref;
}

Table* Database::table(std::string_view name) noexcept {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(std::string_view name) const noexcept {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Database::require_table(std::string_view name) {
  Table* t = table(name);
  if (t == nullptr) throw TypeError("unknown table '" + std::string(name) + "'");
  return *t;
}

const Table& Database::require_table(std::string_view name) const {
  const Table* t = table(name);
  if (t == nullptr) throw TypeError("unknown table '" + std::string(name) + "'");
  return *t;
}

bool Database::drop_table(std::string_view name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) return false;
  tables_.erase(it);
  return true;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    (void)table;
    names.push_back(name);
  }
  return names;
}

ResultSet Database::execute(std::string_view sql_text) {
  const sql::Statement stmt = sql::parse_statement(sql_text);

  if (const auto* select = std::get_if<sql::SelectStmt>(&stmt)) {
    return sql::execute_select(*this, *select);
  }

  if (const auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    create_table(create->name, TableSchema(create->columns));
    return ResultSet{};
  }

  if (const auto* create_index = std::get_if<sql::CreateIndexStmt>(&stmt)) {
    Table& t = require_table(create_index->table_name);
    if (create_index->ordered) {
      t.create_ordered_index(create_index->index_name, create_index->columns);
    } else {
      t.create_hash_index(create_index->index_name, create_index->columns);
    }
    return ResultSet{};
  }

  const auto& insert = std::get<sql::InsertStmt>(stmt);
  Table& t = require_table(insert.table_name);
  std::vector<std::size_t> positions;
  if (!insert.columns.empty()) {
    for (const auto& column : insert.columns) {
      positions.push_back(t.schema().require(column));
    }
  }
  for (const auto& literals : insert.rows) {
    if (positions.empty()) {
      t.append(Row(literals.begin(), literals.end()));
    } else {
      if (literals.size() != positions.size()) {
        throw TypeError("INSERT arity mismatch");
      }
      Row row(t.schema().size());
      for (std::size_t i = 0; i < positions.size(); ++i) row[positions[i]] = literals[i];
      t.append(std::move(row));
    }
  }
  ResultSet out;
  out.schema.add(Column{"inserted", Type::kInt});
  out.rows.push_back(Row{Value(static_cast<std::int64_t>(insert.rows.size()))});
  return out;
}

std::size_t Database::approx_bytes() const noexcept {
  std::size_t bytes = clobs_.resident_bytes() + interner_.approx_bytes();
  for (const auto& [name, table] : tables_) {
    (void)name;
    bytes += table->approx_bytes();
  }
  return bytes;
}

}  // namespace hxrc::rel
