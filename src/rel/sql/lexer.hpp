// SQL tokenizer.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rel/value.hpp"

namespace hxrc::rel::sql {

class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& message) : std::runtime_error(message) {}
};

struct Token {
  enum class Kind { kIdent, kKeyword, kInt, kDouble, kString, kPunct, kEnd };

  Kind kind = Kind::kEnd;
  std::string text;       // identifier (original case), punct, or string body
  std::string upper;      // uppercased text for keyword matching
  std::int64_t int_value = 0;
  double double_value = 0.0;

  bool is_keyword(std::string_view kw) const noexcept {
    return kind == Kind::kKeyword && upper == kw;
  }
  bool is_punct(std::string_view p) const noexcept {
    return kind == Kind::kPunct && text == p;
  }
};

/// Tokenizes a statement; throws SqlError on bad input.
std::vector<Token> tokenize(std::string_view input);

}  // namespace hxrc::rel::sql
