#include "rel/sql/planner.hpp"

#include <unordered_map>

#include "rel/database.hpp"
#include "rel/sql/lexer.hpp"

namespace hxrc::rel::sql {

namespace {

/// One resolvable column: (table alias, column name) -> position in the
/// current intermediate row.
struct Binding {
  std::string alias;
  std::string column;
  std::size_t position;
  Type type;
};

class Bindings {
 public:
  void add(const std::string& alias, const TableSchema& schema, std::size_t offset) {
    for (std::size_t i = 0; i < schema.size(); ++i) {
      entries_.push_back(
          Binding{alias, schema.column(i).name, offset + i, schema.column(i).type});
    }
  }

  const std::vector<Binding>& entries() const noexcept { return entries_; }

  std::size_t width() const noexcept { return entries_.size(); }

  /// Resolves a (possibly qualified) column reference.
  const Binding& resolve(const std::string& table, const std::string& column) const {
    const Binding* found = nullptr;
    for (const auto& binding : entries_) {
      if (!table.empty() && binding.alias != table) continue;
      if (binding.column != column) continue;
      if (found != nullptr) {
        throw SqlError("ambiguous column reference '" +
                       (table.empty() ? column : table + "." + column) + "'");
      }
      found = &binding;
    }
    if (found == nullptr) {
      throw SqlError("unknown column '" + (table.empty() ? column : table + "." + column) +
                     "'");
    }
    return *found;
  }

  /// True when the reference resolves here (used for join-side detection).
  bool resolves(const std::string& table, const std::string& column) const noexcept {
    for (const auto& binding : entries_) {
      if ((table.empty() || binding.alias == table) && binding.column == column) return true;
    }
    return false;
  }

 private:
  std::vector<Binding> entries_;
};

/// Resolves an AST expression to an executable Expr over the current row
/// layout. Aggregates are rejected here (they are handled by the grouped
/// path, which replaces them with column references first).
ExprPtr resolve_expr(const AstExpr& ast, const Bindings& bindings) {
  switch (ast.kind) {
    case AstExpr::Kind::kColumnRef: {
      const Binding& binding = bindings.resolve(ast.table, ast.column);
      return col(binding.position, binding.alias + "." + binding.column);
    }
    case AstExpr::Kind::kLiteral:
      return lit(ast.literal);
    case AstExpr::Kind::kBinary:
      return binary(ast.op, resolve_expr(*ast.lhs, bindings),
                    resolve_expr(*ast.rhs, bindings));
    case AstExpr::Kind::kNot:
      return not_(resolve_expr(*ast.rhs, bindings));
    case AstExpr::Kind::kIsNull: {
      ExprPtr inner = is_null(resolve_expr(*ast.rhs, bindings));
      return ast.negated ? not_(std::move(inner)) : std::move(inner);
    }
    case AstExpr::Kind::kLike: {
      ExprPtr inner = like(resolve_expr(*ast.rhs, bindings), ast.literal.as_string());
      return ast.negated ? not_(std::move(inner)) : std::move(inner);
    }
    case AstExpr::Kind::kIn: {
      ExprPtr operand = resolve_expr(*ast.rhs, bindings);
      std::vector<ExprPtr> terms;
      terms.reserve(ast.in_list.size());
      for (const Value& value : ast.in_list) {
        terms.push_back(eq(operand, lit(value)));
      }
      ExprPtr any = terms.empty() ? lit(Value(std::int64_t{0})) : terms.front();
      for (std::size_t i = 1; i < terms.size(); ++i) {
        any = or_(std::move(any), std::move(terms[i]));
      }
      return ast.negated ? not_(std::move(any)) : std::move(any);
    }
    case AstExpr::Kind::kAggregate:
      throw SqlError("aggregate used outside of a grouped context");
  }
  throw SqlError("unreachable expression kind");
}

/// Collects the conjuncts of an AND tree.
void collect_conjuncts(const AstExpr& ast, std::vector<const AstExpr*>& out) {
  if (ast.kind == AstExpr::Kind::kBinary && ast.op == BinOp::kAnd) {
    collect_conjuncts(*ast.lhs, out);
    collect_conjuncts(*ast.rhs, out);
    return;
  }
  out.push_back(&ast);
}

/// Collects aggregate nodes in evaluation order (select list first, then
/// HAVING, then ORDER BY).
void collect_aggregates(const AstExpr& ast, std::vector<const AstExpr*>& out) {
  if (ast.kind == AstExpr::Kind::kAggregate) {
    out.push_back(&ast);
    return;
  }
  if (ast.lhs) collect_aggregates(*ast.lhs, out);
  if (ast.rhs) collect_aggregates(*ast.rhs, out);
  if (ast.agg_arg) collect_aggregates(*ast.agg_arg, out);
}

struct GroupContext {
  /// Original row position of each group key -> position in grouped output.
  std::unordered_map<std::size_t, std::size_t> key_position;
  /// Aggregate AST node -> position in grouped output.
  std::unordered_map<const AstExpr*, std::size_t> agg_position;
  const Bindings* pre_group_bindings = nullptr;
};

/// Resolves an expression over the *grouped* result: aggregates become
/// column refs, column refs must be group keys.
ExprPtr resolve_grouped(const AstExpr& ast, const GroupContext& ctx) {
  switch (ast.kind) {
    case AstExpr::Kind::kAggregate: {
      const auto it = ctx.agg_position.find(&ast);
      if (it == ctx.agg_position.end()) throw SqlError("unregistered aggregate");
      return col(it->second, "agg");
    }
    case AstExpr::Kind::kColumnRef: {
      const Binding& binding = ctx.pre_group_bindings->resolve(ast.table, ast.column);
      const auto it = ctx.key_position.find(binding.position);
      if (it == ctx.key_position.end()) {
        throw SqlError("column '" + ast.column + "' is neither aggregated nor in GROUP BY");
      }
      return col(it->second, binding.alias + "." + binding.column);
    }
    case AstExpr::Kind::kLiteral:
      return lit(ast.literal);
    case AstExpr::Kind::kBinary:
      return binary(ast.op, resolve_grouped(*ast.lhs, ctx), resolve_grouped(*ast.rhs, ctx));
    case AstExpr::Kind::kNot:
      return not_(resolve_grouped(*ast.rhs, ctx));
    case AstExpr::Kind::kIsNull: {
      ExprPtr inner = is_null(resolve_grouped(*ast.rhs, ctx));
      return ast.negated ? not_(std::move(inner)) : std::move(inner);
    }
    case AstExpr::Kind::kLike: {
      ExprPtr inner = like(resolve_grouped(*ast.rhs, ctx), ast.literal.as_string());
      return ast.negated ? not_(std::move(inner)) : std::move(inner);
    }
    case AstExpr::Kind::kIn: {
      ExprPtr operand = resolve_grouped(*ast.rhs, ctx);
      ExprPtr any = lit(Value(std::int64_t{0}));
      for (const Value& value : ast.in_list) {
        any = or_(std::move(any), eq(operand, lit(value)));
      }
      return ast.negated ? not_(std::move(any)) : std::move(any);
    }
  }
  throw SqlError("unreachable expression kind");
}

std::string output_name(const SelectItem& item, std::size_t ordinal) {
  if (item.alias) return *item.alias;
  if (item.expr && item.expr->kind == AstExpr::Kind::kColumnRef) return item.expr->column;
  return "col" + std::to_string(ordinal + 1);
}

/// ORDER BY may reference select-list aliases; returns the aliased item's
/// expression when `expr` is a bare reference to one, else `expr` itself.
const AstExpr& dealias(const AstExpr& expr, const std::vector<SelectItem>& items) {
  if (expr.kind != AstExpr::Kind::kColumnRef || !expr.table.empty()) return expr;
  for (const SelectItem& item : items) {
    if (!item.star && item.alias && *item.alias == expr.column) return *item.expr;
  }
  return expr;
}

}  // namespace

ResultSet execute_select(const Database& db, const SelectStmt& stmt) {
  // ---- FROM ----
  const Table& base = [&]() -> const Table& {
    const Table* t = db.table(stmt.from.name);
    if (t == nullptr) throw SqlError("unknown table '" + stmt.from.name + "'");
    return *t;
  }();
  ResultSet current = scan(base);
  Bindings bindings;
  bindings.add(stmt.from.alias, base.schema(), 0);

  // ---- JOINs ----
  for (const JoinClause& join : stmt.joins) {
    const Table* right_table = db.table(join.table.name);
    if (right_table == nullptr) throw SqlError("unknown table '" + join.table.name + "'");
    ResultSet right = scan(*right_table);
    Bindings right_bindings;
    right_bindings.add(join.table.alias, right_table->schema(), 0);

    // Split ON into equi-key pairs and residual predicates.
    std::vector<const AstExpr*> conjuncts;
    collect_conjuncts(*join.on, conjuncts);
    std::vector<std::size_t> left_keys;
    std::vector<std::size_t> right_keys;
    std::vector<const AstExpr*> residual;
    for (const AstExpr* conjunct : conjuncts) {
      const bool is_col_eq = conjunct->kind == AstExpr::Kind::kBinary &&
                             conjunct->op == BinOp::kEq &&
                             conjunct->lhs->kind == AstExpr::Kind::kColumnRef &&
                             conjunct->rhs->kind == AstExpr::Kind::kColumnRef;
      if (is_col_eq) {
        const AstExpr& a = *conjunct->lhs;
        const AstExpr& b = *conjunct->rhs;
        const bool a_left = bindings.resolves(a.table, a.column);
        const bool b_left = bindings.resolves(b.table, b.column);
        const bool a_right = right_bindings.resolves(a.table, a.column);
        const bool b_right = right_bindings.resolves(b.table, b.column);
        if (a_left && b_right && !(a_right && !a.table.empty())) {
          left_keys.push_back(bindings.resolve(a.table, a.column).position);
          right_keys.push_back(right_bindings.resolve(b.table, b.column).position);
          continue;
        }
        if (b_left && a_right) {
          left_keys.push_back(bindings.resolve(b.table, b.column).position);
          right_keys.push_back(right_bindings.resolve(a.table, a.column).position);
          continue;
        }
      }
      residual.push_back(conjunct);
    }

    if (join.left_outer && !residual.empty()) {
      throw SqlError("LEFT JOIN requires an equi-join ON condition");
    }

    const std::size_t left_width = bindings.width();
    current = hash_join(current, left_keys, right, right_keys,
                        join.left_outer ? JoinType::kLeftOuter : JoinType::kInner);
    bindings.add(join.table.alias, right_table->schema(), left_width);

    if (!residual.empty()) {
      std::vector<ExprPtr> terms;
      terms.reserve(residual.size());
      for (const AstExpr* conjunct : residual) {
        terms.push_back(resolve_expr(*conjunct, bindings));
      }
      current = filter(std::move(current), *conjunction(std::move(terms)));
    }
  }

  // ---- WHERE ----
  if (stmt.where) {
    current = filter(std::move(current), *resolve_expr(*stmt.where, bindings));
  }

  // ---- aggregation? ----
  std::vector<const AstExpr*> aggregates;
  for (const SelectItem& item : stmt.items) {
    if (item.expr) collect_aggregates(*item.expr, aggregates);
  }
  if (stmt.having) collect_aggregates(*stmt.having, aggregates);
  for (const OrderItem& item : stmt.order_by) {
    collect_aggregates(*item.expr, aggregates);
  }
  const bool grouped = !stmt.group_by.empty() || !aggregates.empty();

  ResultSet output;
  if (grouped) {
    // Resolve group keys (must be column references).
    std::vector<std::size_t> key_columns;
    for (const AstExprPtr& key : stmt.group_by) {
      if (key->kind != AstExpr::Kind::kColumnRef) {
        throw SqlError("GROUP BY supports column references only");
      }
      key_columns.push_back(bindings.resolve(key->table, key->column).position);
    }

    // Materialize aggregate arguments as extra columns when they are not
    // plain column references.
    std::vector<Aggregate> specs;
    specs.reserve(aggregates.size());
    ResultSet extended = std::move(current);
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      const AstExpr& agg = *aggregates[a];
      Aggregate spec;
      spec.fn = agg.agg_fn;
      spec.name = "agg" + std::to_string(a);
      if (agg.agg_star) {
        spec.column = 0;
      } else if (agg.agg_arg->kind == AstExpr::Kind::kColumnRef) {
        spec.column =
            bindings.resolve(agg.agg_arg->table, agg.agg_arg->column).position;
      } else {
        ExprPtr arg_expr = resolve_expr(*agg.agg_arg, bindings);
        const std::size_t new_col = extended.schema.size();
        extended.schema.add(Column{spec.name + "_arg", Type::kDouble});
        for (Row& row : extended.rows) row.push_back(arg_expr->eval(row));
        spec.column = new_col;
      }
      specs.push_back(std::move(spec));
    }

    ResultSet groupedResult = group_by(extended, key_columns, specs);

    GroupContext ctx;
    ctx.pre_group_bindings = &bindings;
    for (std::size_t i = 0; i < key_columns.size(); ++i) {
      ctx.key_position[key_columns[i]] = i;
    }
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      ctx.agg_position[aggregates[a]] = key_columns.size() + a;
    }

    if (stmt.having) {
      groupedResult = filter(std::move(groupedResult), *resolve_grouped(*stmt.having, ctx));
    }

    // Projection over the grouped result.
    std::vector<std::pair<ExprPtr, Column>> outputs;
    for (std::size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) throw SqlError("SELECT * cannot be combined with GROUP BY");
      ExprPtr expr = resolve_grouped(*item.expr, ctx);
      Type type = Type::kString;
      if (item.expr->kind == AstExpr::Kind::kAggregate ||
          item.expr->kind == AstExpr::Kind::kBinary) {
        type = Type::kDouble;
      } else if (item.expr->kind == AstExpr::Kind::kColumnRef) {
        const auto pos = ctx.key_position.at(
            bindings.resolve(item.expr->table, item.expr->column).position);
        type = groupedResult.schema.column(pos).type;
      }
      if (item.expr->kind == AstExpr::Kind::kAggregate &&
          (item.expr->agg_fn == Aggregate::Fn::kCount ||
           item.expr->agg_fn == Aggregate::Fn::kCountDistinct)) {
        type = Type::kInt;
      }
      outputs.emplace_back(std::move(expr), Column{output_name(item, i), type});
    }

    // ORDER BY is resolved over the grouped result, pre-projection;
    // select-list aliases are honored.
    std::vector<std::pair<ExprPtr, bool>> order_exprs;
    for (const OrderItem& item : stmt.order_by) {
      order_exprs.emplace_back(resolve_grouped(dealias(*item.expr, stmt.items), ctx),
                               item.descending);
    }
    if (!order_exprs.empty()) {
      // Materialize sort keys, sort, then drop them.
      ResultSet keyed = groupedResult;
      std::vector<std::pair<std::size_t, bool>> keys;
      for (const auto& [expr, desc] : order_exprs) {
        const std::size_t pos = keyed.schema.size();
        keyed.schema.add(Column{"sortkey", Type::kDouble});
        for (std::size_t r = 0; r < keyed.rows.size(); ++r) {
          keyed.rows[r].push_back(expr->eval(groupedResult.rows[r]));
        }
        keys.emplace_back(pos, desc);
      }
      keyed = sort_by(std::move(keyed), keys);
      for (Row& row : keyed.rows) row.resize(groupedResult.schema.size());
      keyed.schema = groupedResult.schema;
      groupedResult = std::move(keyed);
    }

    output = project_exprs(groupedResult, outputs);
  } else {
    // Plain projection.
    std::vector<std::pair<ExprPtr, Column>> outputs;
    for (std::size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        for (const Binding& binding : bindings.entries()) {
          outputs.emplace_back(col(binding.position, binding.column),
                               Column{binding.column, binding.type});
        }
        continue;
      }
      ExprPtr expr = resolve_expr(*item.expr, bindings);
      Type type = Type::kString;
      if (item.expr->kind == AstExpr::Kind::kColumnRef) {
        type = bindings.resolve(item.expr->table, item.expr->column).type;
      } else if (item.expr->kind == AstExpr::Kind::kLiteral) {
        type = item.expr->literal.type();
      } else {
        type = Type::kDouble;
      }
      outputs.emplace_back(std::move(expr), Column{output_name(item, i), type});
    }

    // ORDER BY over the *input* bindings, applied before projection.
    if (!stmt.order_by.empty()) {
      std::vector<std::pair<std::size_t, bool>> keys;
      ResultSet keyed = std::move(current);
      const std::size_t base_width = keyed.schema.size();
      std::size_t extra = 0;
      for (const OrderItem& item : stmt.order_by) {
        ExprPtr expr = resolve_expr(dealias(*item.expr, stmt.items), bindings);
        keyed.schema.add(Column{"sortkey", Type::kDouble});
        for (Row& row : keyed.rows) {
          Row probe(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(base_width));
          row.push_back(expr->eval(probe));
        }
        keys.emplace_back(base_width + extra, item.descending);
        ++extra;
      }
      keyed = sort_by(std::move(keyed), keys);
      for (Row& row : keyed.rows) row.resize(base_width);
      current = std::move(keyed);
      // Schema columns beyond base width were dropped with the rows.
      TableSchema trimmed;
      for (std::size_t c = 0; c < base_width; ++c) trimmed.add(Column{
          std::string("c") + std::to_string(c), Type::kString});
      // The projection below indexes by position, so names are irrelevant.
      current.schema = trimmed;
    }

    output = project_exprs(current, outputs);
  }

  if (stmt.distinct) output = distinct(std::move(output));
  if (stmt.limit) output = limit(std::move(output), *stmt.limit);
  return output;
}

}  // namespace hxrc::rel::sql
