#include "rel/sql/lexer.hpp"

#include <cctype>
#include <unordered_set>

#include "util/string_util.hpp"

namespace hxrc::rel::sql {

namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "LEFT",   "OUTER",  "INNER",  "ON",     "AS",
      "AND",    "OR",    "NOT",    "IS",     "NULL",   "ASC",    "DESC",
      "LIKE",   "IN",
      "CREATE", "TABLE", "INDEX",  "ORDERED", "INSERT", "INTO",  "VALUES",
      "COUNT",  "SUM",   "MIN",    "MAX",    "DISTINCT", "INT",  "DOUBLE",
      "STRING", "TEXT",  "BIGINT", "VARCHAR",
  };
  return kKeywords;
}

}  // namespace

std::vector<Token> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto n = input.size();

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      Token token;
      token.text = std::string(input.substr(start, i - start));
      token.upper = util::to_lower(token.text);
      for (auto& ch : token.upper) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      token.kind = keywords().count(token.upper) != 0 ? Token::Kind::kKeyword
                                                      : Token::Kind::kIdent;
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      const std::size_t start = i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.' || input[i] == 'e' || input[i] == 'E') is_double = true;
        ++i;
      }
      const std::string_view text = input.substr(start, i - start);
      Token token;
      token.text = std::string(text);
      if (is_double) {
        const auto value = util::parse_double(text);
        if (!value) throw SqlError("bad numeric literal '" + token.text + "'");
        token.kind = Token::Kind::kDouble;
        token.double_value = *value;
      } else {
        const auto value = util::parse_int(text);
        if (!value) throw SqlError("bad integer literal '" + token.text + "'");
        token.kind = Token::Kind::kInt;
        token.int_value = *value;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      for (;;) {
        if (i >= n) throw SqlError("unterminated string literal");
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        body.push_back(input[i]);
        ++i;
      }
      Token token;
      token.kind = Token::Kind::kString;
      token.text = std::move(body);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char punctuation first.
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "!=", "<>"};
    bool matched = false;
    for (const auto p : kTwoChar) {
      if (input.substr(i, 2) == p) {
        Token token;
        token.kind = Token::Kind::kPunct;
        token.text = std::string(p == "<>" ? "!=" : p);
        tokens.push_back(std::move(token));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "(),.*=<>+-/;";
    if (kOneChar.find(c) != std::string_view::npos) {
      Token token;
      token.kind = Token::Kind::kPunct;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    throw SqlError(std::string("unexpected character '") + c + "' in SQL input");
  }

  tokens.push_back(Token{});  // kEnd sentinel
  return tokens;
}

}  // namespace hxrc::rel::sql
