// Recursive-descent parser for the SQL subset (see ast.hpp for the grammar).
#pragma once

#include <string_view>

#include "rel/sql/ast.hpp"
#include "rel/sql/lexer.hpp"

namespace hxrc::rel::sql {

/// Parses a single statement (a trailing ';' is allowed).
/// Throws SqlError on syntax errors.
Statement parse_statement(std::string_view input);

}  // namespace hxrc::rel::sql
