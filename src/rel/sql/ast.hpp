// Abstract syntax tree for the SQL subset.
//
// The engine speaks the slice of SQL a metadata catalog needs:
//   CREATE TABLE t (col TYPE, ...)
//   CREATE [ORDERED] INDEX name ON t (cols)
//   INSERT INTO t [(cols)] VALUES (...), (...)
//   SELECT items FROM t [alias] [JOIN u [alias] ON cond]... [WHERE cond]
//     [GROUP BY cols] [HAVING cond] [ORDER BY items [ASC|DESC]] [LIMIT n]
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rel/expr.hpp"
#include "rel/ops.hpp"
#include "rel/value.hpp"

namespace hxrc::rel::sql {

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// Untyped expression prior to name resolution.
struct AstExpr {
  enum class Kind { kColumnRef, kLiteral, kBinary, kNot, kIsNull, kAggregate, kLike, kIn };

  Kind kind = Kind::kLiteral;

  // kColumnRef
  std::string table;   // optional qualifier
  std::string column;

  // kLiteral; also the pattern for kLike
  Value literal;

  // kBinary / kNot / kIsNull / kLike / kIn
  BinOp op = BinOp::kEq;
  AstExprPtr lhs;
  AstExprPtr rhs;     // also the operand of kNot / kIsNull / kLike / kIn
  bool negated = false;  // IS NOT NULL / NOT LIKE / NOT IN

  // kIn
  std::vector<Value> in_list;

  // kAggregate
  Aggregate::Fn agg_fn = Aggregate::Fn::kCount;
  bool agg_star = false;      // COUNT(*)
  bool agg_distinct = false;  // COUNT(DISTINCT x)
  AstExprPtr agg_arg;

  static AstExprPtr column_ref(std::string table, std::string column);
  static AstExprPtr lit(Value value);
  static AstExprPtr binary(BinOp op, AstExprPtr lhs, AstExprPtr rhs);
  static AstExprPtr not_(AstExprPtr operand);
  static AstExprPtr is_null(AstExprPtr operand, bool negated);
  static AstExprPtr aggregate(Aggregate::Fn fn, AstExprPtr arg, bool star, bool distinct);
  static AstExprPtr like_op(AstExprPtr operand, std::string pattern, bool negated);
  static AstExprPtr in_op(AstExprPtr operand, std::vector<Value> values, bool negated);
};

struct SelectItem {
  bool star = false;  // SELECT *
  AstExprPtr expr;
  std::optional<std::string> alias;
};

struct TableRef {
  std::string name;
  std::string alias;  // defaults to name
};

struct JoinClause {
  TableRef table;
  AstExprPtr on;
  bool left_outer = false;
};

struct OrderItem {
  AstExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<std::size_t> limit;
  bool distinct = false;
};

struct CreateTableStmt {
  std::string name;
  std::vector<Column> columns;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
  bool ordered = false;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;  // empty = positional
  std::vector<std::vector<Value>> rows;
};

using Statement = std::variant<SelectStmt, CreateTableStmt, CreateIndexStmt, InsertStmt>;

}  // namespace hxrc::rel::sql
