// Name resolution, planning, and execution for the SQL subset.
//
// Planning is deliberately simple: FROM/JOIN build a left-deep pipeline of
// hash joins (equi-conditions are detected in ON clauses; anything else
// falls back to a filtered cross product), WHERE filters, GROUP BY hashes,
// HAVING filters, then projection / DISTINCT / ORDER BY / LIMIT.
#pragma once

#include "rel/ops.hpp"
#include "rel/sql/ast.hpp"

namespace hxrc::rel {
class Database;
}  // namespace hxrc::rel

namespace hxrc::rel::sql {

/// Executes a SELECT against the database's tables.
ResultSet execute_select(const Database& db, const SelectStmt& stmt);

}  // namespace hxrc::rel::sql
