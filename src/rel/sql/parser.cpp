#include "rel/sql/parser.hpp"

namespace hxrc::rel::sql {

AstExprPtr AstExpr::column_ref(std::string table, std::string column) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

AstExprPtr AstExpr::lit(Value value) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

AstExprPtr AstExpr::binary(BinOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

AstExprPtr AstExpr::not_(AstExprPtr operand) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kNot;
  e->rhs = std::move(operand);
  return e;
}

AstExprPtr AstExpr::is_null(AstExprPtr operand, bool negated) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kIsNull;
  e->rhs = std::move(operand);
  e->negated = negated;
  return e;
}

AstExprPtr AstExpr::like_op(AstExprPtr operand, std::string pattern, bool negated) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kLike;
  e->rhs = std::move(operand);
  e->literal = Value(std::move(pattern));
  e->negated = negated;
  return e;
}

AstExprPtr AstExpr::in_op(AstExprPtr operand, std::vector<Value> values, bool negated) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kIn;
  e->rhs = std::move(operand);
  e->in_list = std::move(values);
  e->negated = negated;
  return e;
}

AstExprPtr AstExpr::aggregate(Aggregate::Fn fn, AstExprPtr arg, bool star, bool distinct) {
  auto e = std::make_unique<AstExpr>();
  e->kind = Kind::kAggregate;
  e->agg_fn = fn;
  e->agg_arg = std::move(arg);
  e->agg_star = star;
  e->agg_distinct = distinct;
  return e;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : tokens_(tokenize(input)) {}

  Statement parse() {
    Statement stmt = [&]() -> Statement {
      if (peek().is_keyword("SELECT")) return parse_select();
      if (peek().is_keyword("CREATE")) return parse_create();
      if (peek().is_keyword("INSERT")) return parse_insert();
      throw SqlError("expected SELECT, CREATE, or INSERT");
    }();
    consume_punct(";");
    if (peek().kind != Token::Kind::kEnd) throw SqlError("trailing tokens after statement");
    return stmt;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& advance() { return tokens_[pos_++]; }

  bool consume_keyword(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_keyword(std::string_view kw) {
    if (!consume_keyword(kw)) throw SqlError("expected " + std::string(kw));
  }

  void expect_punct(std::string_view p) {
    if (!consume_punct(p)) {
      throw SqlError("expected '" + std::string(p) + "', got '" + peek().text + "'");
    }
  }

  std::string expect_ident() {
    if (peek().kind != Token::Kind::kIdent) {
      throw SqlError("expected an identifier, got '" + peek().text + "'");
    }
    return advance().text;
  }

  // ---- expressions (precedence climbing) ----

  AstExprPtr parse_expr() { return parse_or(); }

  AstExprPtr parse_or() {
    AstExprPtr lhs = parse_and();
    while (consume_keyword("OR")) {
      lhs = AstExpr::binary(BinOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  AstExprPtr parse_and() {
    AstExprPtr lhs = parse_not();
    while (consume_keyword("AND")) {
      lhs = AstExpr::binary(BinOp::kAnd, std::move(lhs), parse_not());
    }
    return lhs;
  }

  AstExprPtr parse_not() {
    if (consume_keyword("NOT")) return AstExpr::not_(parse_not());
    return parse_comparison();
  }

  AstExprPtr parse_comparison() {
    AstExprPtr lhs = parse_additive();
    if (consume_keyword("IS")) {
      const bool negated = consume_keyword("NOT");
      expect_keyword("NULL");
      return AstExpr::is_null(std::move(lhs), negated);
    }
    {
      // [NOT] LIKE / [NOT] IN
      bool negated = false;
      std::size_t mark = pos_;
      if (consume_keyword("NOT")) negated = true;
      if (consume_keyword("LIKE")) {
        if (peek().kind != Token::Kind::kString) {
          throw SqlError("LIKE expects a string pattern");
        }
        std::string pattern = advance().text;
        return AstExpr::like_op(std::move(lhs), std::move(pattern), negated);
      }
      if (consume_keyword("IN")) {
        expect_punct("(");
        std::vector<Value> values;
        for (;;) {
          values.push_back(parse_literal_value());
          if (!consume_punct(",")) break;
        }
        expect_punct(")");
        return AstExpr::in_op(std::move(lhs), std::move(values), negated);
      }
      pos_ = mark;  // bare NOT belongs to parse_not, rewind
    }
    struct OpMap {
      std::string_view text;
      BinOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"!=", BinOp::kNe},
        {"=", BinOp::kEq},  {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (consume_punct(text)) {
        return AstExpr::binary(op, std::move(lhs), parse_additive());
      }
    }
    return lhs;
  }

  AstExprPtr parse_additive() {
    AstExprPtr lhs = parse_multiplicative();
    for (;;) {
      if (consume_punct("+")) {
        lhs = AstExpr::binary(BinOp::kAdd, std::move(lhs), parse_multiplicative());
      } else if (consume_punct("-")) {
        lhs = AstExpr::binary(BinOp::kSub, std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr parse_multiplicative() {
    AstExprPtr lhs = parse_primary();
    for (;;) {
      if (consume_punct("*")) {
        lhs = AstExpr::binary(BinOp::kMul, std::move(lhs), parse_primary());
      } else if (consume_punct("/")) {
        lhs = AstExpr::binary(BinOp::kDiv, std::move(lhs), parse_primary());
      } else {
        return lhs;
      }
    }
  }

  AstExprPtr parse_primary() {
    const Token& token = peek();
    if (token.kind == Token::Kind::kInt) {
      ++pos_;
      return AstExpr::lit(Value(token.int_value));
    }
    if (token.kind == Token::Kind::kDouble) {
      ++pos_;
      return AstExpr::lit(Value(token.double_value));
    }
    if (token.kind == Token::Kind::kString) {
      ++pos_;
      return AstExpr::lit(Value(token.text));
    }
    if (token.is_keyword("NULL")) {
      ++pos_;
      return AstExpr::lit(Value::null());
    }
    if (consume_punct("-")) {  // unary minus on a numeric literal or expr
      AstExprPtr operand = parse_primary();
      return AstExpr::binary(BinOp::kSub, AstExpr::lit(Value(std::int64_t{0})),
                             std::move(operand));
    }
    if (consume_punct("(")) {
      AstExprPtr inner = parse_expr();
      expect_punct(")");
      return inner;
    }
    // Aggregates.
    if (token.is_keyword("COUNT") || token.is_keyword("SUM") || token.is_keyword("MIN") ||
        token.is_keyword("MAX")) {
      const std::string fn_name = advance().upper;
      expect_punct("(");
      bool star = false;
      bool distinct = false;
      AstExprPtr arg;
      if (consume_punct("*")) {
        star = true;
      } else {
        distinct = consume_keyword("DISTINCT");
        arg = parse_expr();
      }
      expect_punct(")");
      Aggregate::Fn fn;
      if (fn_name == "COUNT") {
        fn = distinct ? Aggregate::Fn::kCountDistinct : Aggregate::Fn::kCount;
      } else if (fn_name == "SUM") {
        fn = Aggregate::Fn::kSum;
      } else if (fn_name == "MIN") {
        fn = Aggregate::Fn::kMin;
      } else {
        fn = Aggregate::Fn::kMax;
      }
      if (fn_name == "COUNT" && !star && !distinct) fn = Aggregate::Fn::kCount;
      return AstExpr::aggregate(fn, std::move(arg), star, distinct);
    }
    if (token.kind == Token::Kind::kIdent) {
      std::string first = advance().text;
      if (consume_punct(".")) {
        std::string column = expect_ident();
        return AstExpr::column_ref(std::move(first), std::move(column));
      }
      return AstExpr::column_ref("", std::move(first));
    }
    throw SqlError("unexpected token '" + token.text + "' in expression");
  }

  /// A literal usable in IN lists and VALUES.
  Value parse_literal_value() {
    const Token& token = peek();
    if (token.kind == Token::Kind::kInt) {
      ++pos_;
      return Value(token.int_value);
    }
    if (token.kind == Token::Kind::kDouble) {
      ++pos_;
      return Value(token.double_value);
    }
    if (token.kind == Token::Kind::kString) {
      ++pos_;
      return Value(token.text);
    }
    if (token.is_keyword("NULL")) {
      ++pos_;
      return Value::null();
    }
    if (token.is_punct("-")) {
      ++pos_;
      const Token& num = peek();
      if (num.kind == Token::Kind::kInt) {
        ++pos_;
        return Value(-num.int_value);
      }
      if (num.kind == Token::Kind::kDouble) {
        ++pos_;
        return Value(-num.double_value);
      }
      throw SqlError("expected a number after '-'");
    }
    throw SqlError("expected a literal, got '" + token.text + "'");
  }

  // ---- statements ----

  TableRef parse_table_ref() {
    TableRef ref;
    ref.name = expect_ident();
    ref.alias = ref.name;
    if (consume_keyword("AS")) {
      ref.alias = expect_ident();
    } else if (peek().kind == Token::Kind::kIdent) {
      ref.alias = advance().text;
    }
    return ref;
  }

  SelectStmt parse_select() {
    expect_keyword("SELECT");
    SelectStmt stmt;
    stmt.distinct = consume_keyword("DISTINCT");
    // Select list.
    for (;;) {
      SelectItem item;
      if (consume_punct("*")) {
        item.star = true;
      } else {
        item.expr = parse_expr();
        if (consume_keyword("AS")) {
          item.alias = expect_ident();
        } else if (peek().kind == Token::Kind::kIdent) {
          item.alias = advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!consume_punct(",")) break;
    }
    expect_keyword("FROM");
    stmt.from = parse_table_ref();
    // Joins.
    for (;;) {
      bool left_outer = false;
      if (consume_keyword("LEFT")) {
        consume_keyword("OUTER");
        expect_keyword("JOIN");
        left_outer = true;
      } else if (consume_keyword("INNER")) {
        expect_keyword("JOIN");
      } else if (!consume_keyword("JOIN")) {
        break;
      }
      JoinClause join;
      join.left_outer = left_outer;
      join.table = parse_table_ref();
      expect_keyword("ON");
      join.on = parse_expr();
      stmt.joins.push_back(std::move(join));
    }
    if (consume_keyword("WHERE")) stmt.where = parse_expr();
    if (consume_keyword("GROUP")) {
      expect_keyword("BY");
      for (;;) {
        stmt.group_by.push_back(parse_expr());
        if (!consume_punct(",")) break;
      }
    }
    if (consume_keyword("HAVING")) stmt.having = parse_expr();
    if (consume_keyword("ORDER")) {
      expect_keyword("BY");
      for (;;) {
        OrderItem item;
        item.expr = parse_expr();
        if (consume_keyword("DESC")) {
          item.descending = true;
        } else {
          consume_keyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!consume_punct(",")) break;
      }
    }
    if (consume_keyword("LIMIT")) {
      if (peek().kind != Token::Kind::kInt) throw SqlError("LIMIT expects an integer");
      stmt.limit = static_cast<std::size_t>(advance().int_value);
    }
    return stmt;
  }

  Statement parse_create() {
    expect_keyword("CREATE");
    if (consume_keyword("TABLE")) {
      CreateTableStmt stmt;
      stmt.name = expect_ident();
      expect_punct("(");
      for (;;) {
        Column column;
        column.name = expect_ident();
        const Token& type_token = peek();
        if (type_token.is_keyword("INT") || type_token.is_keyword("BIGINT")) {
          column.type = Type::kInt;
        } else if (type_token.is_keyword("DOUBLE")) {
          column.type = Type::kDouble;
        } else if (type_token.is_keyword("STRING") || type_token.is_keyword("TEXT") ||
                   type_token.is_keyword("VARCHAR")) {
          column.type = Type::kString;
        } else {
          throw SqlError("expected a column type, got '" + type_token.text + "'");
        }
        ++pos_;
        // Optional VARCHAR(n) length is accepted and ignored.
        if (consume_punct("(")) {
          if (peek().kind != Token::Kind::kInt) throw SqlError("expected a length");
          ++pos_;
          expect_punct(")");
        }
        stmt.columns.push_back(std::move(column));
        if (!consume_punct(",")) break;
      }
      expect_punct(")");
      return stmt;
    }
    const bool ordered = consume_keyword("ORDERED");
    expect_keyword("INDEX");
    CreateIndexStmt stmt;
    stmt.ordered = ordered;
    stmt.index_name = expect_ident();
    expect_keyword("ON");
    stmt.table_name = expect_ident();
    expect_punct("(");
    for (;;) {
      stmt.columns.push_back(expect_ident());
      if (!consume_punct(",")) break;
    }
    expect_punct(")");
    return stmt;
  }

  InsertStmt parse_insert() {
    expect_keyword("INSERT");
    expect_keyword("INTO");
    InsertStmt stmt;
    stmt.table_name = expect_ident();
    if (consume_punct("(")) {
      for (;;) {
        stmt.columns.push_back(expect_ident());
        if (!consume_punct(",")) break;
      }
      expect_punct(")");
    }
    expect_keyword("VALUES");
    for (;;) {
      expect_punct("(");
      std::vector<Value> row;
      for (;;) {
        const Token& token = peek();
        if (token.kind == Token::Kind::kInt) {
          row.emplace_back(token.int_value);
          ++pos_;
        } else if (token.kind == Token::Kind::kDouble) {
          row.emplace_back(token.double_value);
          ++pos_;
        } else if (token.kind == Token::Kind::kString) {
          row.emplace_back(token.text);
          ++pos_;
        } else if (token.is_keyword("NULL")) {
          row.emplace_back(Value::null());
          ++pos_;
        } else if (token.is_punct("-")) {
          ++pos_;
          const Token& num = peek();
          if (num.kind == Token::Kind::kInt) {
            row.emplace_back(-num.int_value);
          } else if (num.kind == Token::Kind::kDouble) {
            row.emplace_back(-num.double_value);
          } else {
            throw SqlError("expected a number after '-'");
          }
          ++pos_;
        } else {
          throw SqlError("expected a literal in VALUES, got '" + token.text + "'");
        }
        if (!consume_punct(",")) break;
      }
      expect_punct(")");
      stmt.rows.push_back(std::move(row));
      if (!consume_punct(",")) break;
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Statement parse_statement(std::string_view input) {
  Parser parser(input);
  return parser.parse();
}

}  // namespace hxrc::rel::sql
