#include "rel/ops.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace hxrc::rel {

std::string ResultSet::pretty() const {
  std::vector<std::size_t> widths(schema.size());
  for (std::size_t c = 0; c < schema.size(); ++c) {
    widths[c] = schema.column(c).name.size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(row[c].to_string());
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += "| ";
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::vector<std::string> header;
  header.reserve(schema.size());
  for (const auto& column : schema.columns()) header.push_back(column.name);
  emit_row(header);
  for (std::size_t c = 0; c < schema.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& cells : rendered) emit_row(cells);
  return out;
}

namespace {

// ---- Blocked scan kernel (the non-indexed filter path at scale) ----
//
// A column-vs-constant comparison over millions of rows spends most of its
// time in per-row Expr dispatch: two virtual eval() calls, a Value
// temporary, a variant compare. The blocked kernel instead classifies a
// block of rows into dense per-lane arrays (one pointer-chase each), then
// runs a branchless compare over the dense lanes — a loop of independent
// arithmetic the compiler auto-vectorizes 8-wide with SSE2/NEON (and that
// executes branch-free even scalar). Comparison semantics are exactly
// Value::compare under Expr::eval_bool: NULL lanes never match, int/int
// compares exactly, mixed numerics compare as doubles, numerics order
// before strings.

enum : std::uint8_t { kLaneNull = 0, kLaneInt = 1, kLaneDouble = 2, kLaneString = 3 };

struct ScanBlock {
  static constexpr std::size_t kWidth = 64;
  std::int64_t ints[kWidth];
  double nums[kWidth];
  const char* strs[kWidth];
  std::uint32_t lens[kWidth];
  std::uint8_t cls[kWidth];
  std::uint8_t keep[kWidth];
};

struct BlockKernel {
  std::size_t column = 0;
  bool want_lt = false, want_eq = false, want_gt = false;
  bool lit_numeric = false;
  bool lit_int = false;
  std::int64_t ilit = 0;
  double dlit = 0.0;
  std::string_view slit;

  explicit BlockKernel(const ColumnCompare& cc) : column(cc.column) {
    switch (cc.op) {
      case BinOp::kEq: want_eq = true; break;
      case BinOp::kNe: want_lt = want_gt = true; break;
      case BinOp::kLt: want_lt = true; break;
      case BinOp::kLe: want_lt = want_eq = true; break;
      case BinOp::kGt: want_gt = true; break;
      case BinOp::kGe: want_gt = want_eq = true; break;
      default: break;
    }
    switch (cc.literal.type()) {
      case Type::kInt:
        lit_numeric = lit_int = true;
        ilit = cc.literal.as_int();
        dlit = static_cast<double>(ilit);
        break;
      case Type::kDouble:
        lit_numeric = true;
        dlit = cc.literal.as_double();
        break;
      default:
        slit = cc.literal.as_string_view();
        break;
    }
  }

  void classify(const Row& row, std::size_t lane, ScanBlock& b) const {
    const Value& v = row[column];
    switch (v.type()) {
      case Type::kInt:
        b.cls[lane] = kLaneInt;
        b.ints[lane] = v.as_int();
        b.nums[lane] = static_cast<double>(b.ints[lane]);
        break;
      case Type::kDouble:
        b.cls[lane] = kLaneDouble;
        b.nums[lane] = v.as_double();
        break;
      case Type::kString: {
        const std::string_view s = v.as_string_view();
        b.cls[lane] = kLaneString;
        b.strs[lane] = s.data();
        b.lens[lane] = static_cast<std::uint32_t>(s.size());
        break;
      }
      default:
        b.cls[lane] = kLaneNull;
        break;
    }
  }

  void evaluate(ScanBlock& b, std::size_t n) const {
    if (lit_numeric) {
      evaluate_numeric(b, n);
    } else {
      evaluate_string(b, n);
    }
  }

 private:
  /// Numeric literal: every lane reduces to a rank against the literal —
  /// strings rank above all numerics, NULL is masked. Branch-free body;
  /// auto-vectorizes.
  void evaluate_numeric(ScanBlock& b, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t cls = b.cls[i];
      int lt = b.nums[i] < dlit;
      int gt = b.nums[i] > dlit;
      if (lit_int) {
        // Exact int/int compare (Value::compare never rounds two ints
        // through double).
        const int use_int = cls == kLaneInt;
        lt = (use_int & (b.ints[i] < ilit)) | ((!use_int) & lt);
        gt = (use_int & (b.ints[i] > ilit)) | ((!use_int) & gt);
      }
      const int is_str = cls == kLaneString;  // numerics before strings
      lt &= !is_str;
      gt |= is_str;
      const int eq = !lt & !gt;
      b.keep[i] = static_cast<std::uint8_t>(
          (cls != kLaneNull) &
          ((lt & want_lt) | (eq & want_eq) | (gt & want_gt)));
    }
  }

  /// String literal: numeric lanes rank below every string; string lanes
  /// pay a content compare — gated by a cheap length check on the
  /// equality-shaped ops, which rejects almost every row without touching
  /// the bytes.
  void evaluate_string(ScanBlock& b, std::size_t n) const {
    const bool eq_shaped = !want_lt && !want_gt;  // kEq
    for (std::size_t i = 0; i < n; ++i) {
      switch (b.cls[i]) {
        case kLaneNull:
          b.keep[i] = 0;
          break;
        case kLaneInt:
        case kLaneDouble:
          b.keep[i] = static_cast<std::uint8_t>(want_lt);
          break;
        default: {
          if (eq_shaped && b.lens[i] != slit.size()) {
            b.keep[i] = 0;
            break;
          }
          const std::string_view s(b.strs[i], b.lens[i]);
          const int c = s.compare(slit);
          b.keep[i] = static_cast<std::uint8_t>(((c < 0) & want_lt) |
                                                ((c == 0) & want_eq) |
                                                ((c > 0) & want_gt));
          break;
        }
      }
    }
  }
};

void block_scan_table(const Table& table, const BlockKernel& kernel,
                      std::vector<RowId>& out) {
  ScanBlock block;
  const std::size_t n = table.row_count();
  for (RowId base = 0; base < n; base += ScanBlock::kWidth) {
    const std::size_t take = std::min(ScanBlock::kWidth, n - base);
    for (std::size_t lane = 0; lane < take; ++lane) {
      kernel.classify(table.row_unchecked(base + lane), lane, block);
    }
    kernel.evaluate(block, take);
    for (std::size_t lane = 0; lane < take; ++lane) {
      if (block.keep[lane]) out.push_back(base + lane);
    }
  }
}

void block_filter_ids(const Table& table, const BlockKernel& kernel,
                      std::vector<RowId>& ids) {
  ScanBlock block;
  std::size_t kept = 0;
  const std::size_t n = ids.size();
  for (std::size_t base = 0; base < n; base += ScanBlock::kWidth) {
    const std::size_t take = std::min(ScanBlock::kWidth, n - base);
    for (std::size_t lane = 0; lane < take; ++lane) {
      kernel.classify(table.row_unchecked(ids[base + lane]), lane, block);
    }
    kernel.evaluate(block, take);
    for (std::size_t lane = 0; lane < take; ++lane) {
      if (block.keep[lane]) ids[kept++] = ids[base + lane];
    }
  }
  ids.resize(kept);
}

/// The decomposed compare when the blocked kernel applies to `predicate`
/// over a table of `columns` columns.
std::optional<ColumnCompare> block_compare(const Expr& predicate,
                                           std::size_t columns) noexcept {
  auto cc = predicate.as_column_compare();
  if (cc && cc->column < columns) return cc;
  return std::nullopt;
}

}  // namespace

bool block_scannable(const Expr& predicate) noexcept {
  return predicate.as_column_compare().has_value();
}

void scan_ids(const Table& table, const Expr& predicate, std::vector<RowId>& out) {
  if (const auto cc = block_compare(predicate, table.schema().size())) {
    block_scan_table(table, BlockKernel(*cc), out);
    return;
  }
  const std::size_t n = table.row_count();
  for (RowId id = 0; id < n; ++id) {
    if (predicate.eval_bool(table.row_unchecked(id))) out.push_back(id);
  }
}

ResultSet scan(const Table& table, const ExprPtr& predicate) {
  ResultSet out;
  out.schema = table.schema();
  if (predicate) {
    if (const auto cc = block_compare(*predicate, table.schema().size())) {
      std::vector<RowId> ids;
      block_scan_table(table, BlockKernel(*cc), ids);
      out.rows.reserve(ids.size());
      for (const RowId id : ids) out.rows.push_back(table.row_unchecked(id));
      return out;
    }
  }
  out.rows.reserve(predicate ? table.row_count() / 4 : table.row_count());
  for (const Row& row : table.rows()) {
    if (!predicate || predicate->eval_bool(row)) out.rows.push_back(row);
  }
  return out;
}

ResultSet index_scan(const Table& table, const Index& index, const Key& key) {
  return index_scan(table, index, key, nullptr);
}

ResultSet index_scan(const Table& table, const Index& index, const Key& key,
                     const ReadView* view) {
  ResultSet out;
  out.schema = table.schema();
  std::vector<RowId> ids;
  if (view != nullptr) {
    view->lookup_into(table, index, key, ids);
  } else {
    index.lookup_into(key, ids);
  }
  out.rows.reserve(ids.size());
  for (const RowId id : ids) {
    out.rows.push_back(table.row_unchecked(id));
  }
  return out;
}

void index_scan_ids(const Index& index, const Key& key, std::vector<RowId>& out) {
  index.lookup_into(key, out);
}

std::vector<RowId> index_scan_ids(const Index& index, const Key& key) {
  std::vector<RowId> out;
  index.lookup_into(key, out);
  return out;
}

void filter_ids(const Table& table, const Expr& predicate, std::vector<RowId>& ids) {
  if (const auto cc = block_compare(predicate, table.schema().size())) {
    block_filter_ids(table, BlockKernel(*cc), ids);
    return;
  }
  std::size_t kept = 0;
  for (const RowId id : ids) {
    if (predicate.eval_bool(table.row_unchecked(id))) ids[kept++] = id;
  }
  ids.resize(kept);
}

ResultSet materialize(const Table& table, const std::vector<RowId>& ids) {
  ResultSet out;
  out.schema = table.schema();
  out.rows.reserve(ids.size());
  for (const RowId id : ids) out.rows.push_back(table.row(id));
  return out;
}

ResultSet filter(ResultSet input, const Expr& predicate) {
  std::vector<Row> kept;
  kept.reserve(input.rows.size());
  for (Row& row : input.rows) {
    if (predicate.eval_bool(row)) kept.push_back(std::move(row));
  }
  input.rows = std::move(kept);
  return input;
}

ResultSet project(const ResultSet& input, const std::vector<std::string>& columns) {
  std::vector<std::size_t> positions;
  positions.reserve(columns.size());
  ResultSet out;
  for (const auto& name : columns) {
    const std::size_t pos = input.schema.require(name);
    positions.push_back(pos);
    out.schema.add(input.schema.column(pos));
  }
  out.rows.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    Row projected;
    projected.reserve(positions.size());
    for (const std::size_t pos : positions) projected.push_back(row[pos]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

ResultSet project_exprs(const ResultSet& input,
                        const std::vector<std::pair<ExprPtr, Column>>& outputs) {
  ResultSet out;
  for (const auto& [expr, column] : outputs) {
    (void)expr;
    out.schema.add(column);
  }
  out.rows.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    Row computed;
    computed.reserve(outputs.size());
    for (const auto& [expr, column] : outputs) {
      (void)column;
      computed.push_back(expr->eval(row));
    }
    out.rows.push_back(std::move(computed));
  }
  return out;
}

namespace {

TableSchema joined_schema(const TableSchema& left, const TableSchema& right,
                          const std::string& right_prefix) {
  TableSchema schema = left;
  for (const auto& column : right.columns()) {
    std::string name = column.name;
    if (schema.index_of(name).has_value()) name = right_prefix + name;
    schema.add(Column{std::move(name), column.type});
  }
  return schema;
}

Key key_of(const Row& row, const std::vector<std::size_t>& columns) {
  Key key;
  key.parts.reserve(columns.size());
  for (const std::size_t c : columns) key.parts.push_back(row[c]);
  return key;
}

bool key_has_null(const Key& key) noexcept {
  for (const auto& part : key.parts) {
    if (part.is_null()) return true;
  }
  return false;
}

}  // namespace

ResultSet hash_join(const ResultSet& left, const std::vector<std::size_t>& left_keys,
                    const ResultSet& right, const std::vector<std::size_t>& right_keys,
                    JoinType type, const std::string& right_prefix) {
  if (left_keys.size() != right_keys.size()) {
    throw TypeError("hash_join: key arity mismatch");
  }
  ResultSet out;
  out.schema = joined_schema(left.schema, right.schema, right_prefix);

  // Build on the right side.
  std::unordered_multimap<Key, std::size_t, KeyHash> build;
  build.reserve(right.rows.size());
  for (std::size_t i = 0; i < right.rows.size(); ++i) {
    const Key key = key_of(right.rows[i], right_keys);
    if (!key_has_null(key)) build.emplace(key, i);
  }

  const std::size_t right_arity = right.schema.size();
  for (const Row& lrow : left.rows) {
    const Key key = key_of(lrow, left_keys);
    bool matched = false;
    if (!key_has_null(key)) {
      auto [lo, hi] = build.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        Row combined = lrow;
        const Row& rrow = right.rows[it->second];
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.rows.push_back(std::move(combined));
        matched = true;
      }
    }
    if (!matched && type == JoinType::kLeftOuter) {
      Row combined = lrow;
      combined.resize(combined.size() + right_arity);  // NULL padding
      out.rows.push_back(std::move(combined));
    }
  }
  return out;
}

ResultSet hash_join_named(const ResultSet& left, const std::vector<std::string>& left_keys,
                          const ResultSet& right, const std::vector<std::string>& right_keys,
                          JoinType type, const std::string& right_prefix) {
  std::vector<std::size_t> lk;
  std::vector<std::size_t> rk;
  lk.reserve(left_keys.size());
  rk.reserve(right_keys.size());
  for (const auto& name : left_keys) lk.push_back(left.schema.require(name));
  for (const auto& name : right_keys) rk.push_back(right.schema.require(name));
  return hash_join(left, lk, right, rk, type, right_prefix);
}

ResultSet index_join(const ResultSet& left, const std::vector<std::size_t>& left_key_columns,
                     const Table& table, const Index& index,
                     const std::string& right_prefix) {
  ResultSet out;
  out.schema = joined_schema(left.schema, table.schema(), right_prefix);
  std::vector<RowId> scratch;
  for (const Row& lrow : left.rows) {
    const Key key = key_of(lrow, left_key_columns);
    if (key_has_null(key)) continue;
    scratch.clear();
    index.lookup_into(key, scratch);
    for (const RowId id : scratch) {
      Row combined = lrow;
      const Row& rrow = table.row_unchecked(id);
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(combined));
    }
  }
  return out;
}

ResultSet group_by(const ResultSet& input, const std::vector<std::size_t>& key_columns,
                   const std::vector<Aggregate>& aggregates) {
  struct GroupState {
    Row key_values;
    std::vector<std::int64_t> counts;
    std::vector<double> sums;
    std::vector<bool> sum_is_int;
    std::vector<Value> mins;
    std::vector<Value> maxs;
    std::vector<std::set<std::string>> distincts;
  };

  std::unordered_map<Key, GroupState, KeyHash> groups;
  auto make_state = [&](Row key_values) {
    GroupState state;
    state.key_values = std::move(key_values);
    state.counts.assign(aggregates.size(), 0);
    state.sums.assign(aggregates.size(), 0.0);
    state.sum_is_int.assign(aggregates.size(), true);
    state.mins.assign(aggregates.size(), Value::null());
    state.maxs.assign(aggregates.size(), Value::null());
    state.distincts.resize(aggregates.size());
    return state;
  };

  // Global aggregate over empty input still yields one row.
  if (key_columns.empty()) {
    groups.emplace(Key{}, make_state(Row{}));
  }

  for (const Row& row : input.rows) {
    Key key = key_of(row, key_columns);
    auto it = groups.find(key);
    if (it == groups.end()) {
      Row key_values;
      key_values.reserve(key_columns.size());
      for (const std::size_t c : key_columns) key_values.push_back(row[c]);
      it = groups.emplace(std::move(key), make_state(std::move(key_values))).first;
    }
    GroupState& state = it->second;
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      const Aggregate& agg = aggregates[a];
      if (agg.fn == Aggregate::Fn::kCount) {
        ++state.counts[a];
        continue;
      }
      const Value& v = row[agg.column];
      if (v.is_null()) continue;
      switch (agg.fn) {
        case Aggregate::Fn::kCountDistinct:
          state.distincts[a].insert(v.to_string());
          break;
        case Aggregate::Fn::kSum:
          ++state.counts[a];
          state.sums[a] += v.as_double();
          if (v.type() != Type::kInt) state.sum_is_int[a] = false;
          break;
        case Aggregate::Fn::kMin:
          if (state.mins[a].is_null() || v.compare(state.mins[a]) < 0) state.mins[a] = v;
          break;
        case Aggregate::Fn::kMax:
          if (state.maxs[a].is_null() || v.compare(state.maxs[a]) > 0) state.maxs[a] = v;
          break;
        case Aggregate::Fn::kCount:
          break;
      }
    }
  }

  ResultSet out;
  for (const std::size_t c : key_columns) out.schema.add(input.schema.column(c));
  for (const auto& agg : aggregates) {
    Type type = Type::kInt;
    if (agg.fn == Aggregate::Fn::kSum) {
      type = Type::kDouble;  // refined per-group below via Value type
    } else if (agg.fn == Aggregate::Fn::kMin || agg.fn == Aggregate::Fn::kMax) {
      type = input.schema.column(agg.column).type;
    }
    out.schema.add(Column{agg.name, type});
  }

  out.rows.reserve(groups.size());
  for (auto& [key, state] : groups) {
    (void)key;
    Row row = state.key_values;
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      switch (aggregates[a].fn) {
        case Aggregate::Fn::kCount:
          row.push_back(Value(state.counts[a]));
          break;
        case Aggregate::Fn::kCountDistinct:
          row.push_back(Value(static_cast<std::int64_t>(state.distincts[a].size())));
          break;
        case Aggregate::Fn::kSum:
          if (state.counts[a] == 0) {
            row.push_back(Value::null());
          } else if (state.sum_is_int[a]) {
            row.push_back(Value(static_cast<std::int64_t>(state.sums[a])));
          } else {
            row.push_back(Value(state.sums[a]));
          }
          break;
        case Aggregate::Fn::kMin:
          row.push_back(state.mins[a]);
          break;
        case Aggregate::Fn::kMax:
          row.push_back(state.maxs[a]);
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

ResultSet sort_by(ResultSet input, const std::vector<std::pair<std::size_t, bool>>& keys) {
  std::stable_sort(input.rows.begin(), input.rows.end(), [&](const Row& a, const Row& b) {
    for (const auto& [column, descending] : keys) {
      const int c = a[column].compare(b[column]);
      if (c != 0) return descending ? c > 0 : c < 0;
    }
    return false;
  });
  return input;
}

ResultSet distinct(ResultSet input) {
  std::vector<std::size_t> all(input.schema.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return distinct_on(input, all);
}

ResultSet distinct_on(const ResultSet& input, const std::vector<std::size_t>& columns) {
  ResultSet out;
  out.schema = input.schema;
  std::unordered_set<Key, KeyHash> seen;
  seen.reserve(input.rows.size());
  for (const Row& row : input.rows) {
    if (seen.insert(key_of(row, columns)).second) out.rows.push_back(row);
  }
  return out;
}

ResultSet limit(ResultSet input, std::size_t n) {
  if (input.rows.size() > n) input.rows.resize(n);
  return input;
}

ResultSet union_all(ResultSet a, const ResultSet& b) {
  if (a.schema.size() != b.schema.size()) {
    throw TypeError("union_all: arity mismatch");
  }
  a.rows.insert(a.rows.end(), b.rows.begin(), b.rows.end());
  return a;
}

}  // namespace hxrc::rel
