// String dictionary for dictionary-encoded columns.
//
// The catalog's name-bearing columns (tag names, attribute-definition and
// element names) repeat the same handful of strings across millions of rows.
// The interner stores each distinct string once in pointer-stable storage
// and hands out `const std::string*` handles; `Value::interned` wraps a
// handle as a STRING value whose payload is one pointer, so row storage
// stops duplicating the bytes and equality between two interned values from
// the same interner is a pointer compare.
//
// Lifetime contract: interned Values must not outlive the Interner they
// came from. The Database owns one interner with the same lifetime as its
// tables, so values in those tables are always safe; transient databases
// (parallel-ingest staging shards) must NOT intern rows that will be moved
// into a longer-lived database — staging shredders run with interning off.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace hxrc::rel {

class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  // Movable: deque nodes stay put, so canonical pointers and the map's
  // string_view keys survive a move (Database relies on this).
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the canonical pointer for `s`, storing a copy on first sight.
  /// Pointers are stable for the interner's lifetime; equal content always
  /// yields the same pointer.
  const std::string* intern(std::string_view s) {
    const auto it = map_.find(s);
    if (it != map_.end()) return it->second;
    storage_.emplace_back(s);
    const std::string* canonical = &storage_.back();
    map_.emplace(*canonical, canonical);
    return canonical;
  }

  /// Number of distinct strings interned.
  std::size_t size() const noexcept { return storage_.size(); }

  /// Approximate heap footprint of the dictionary itself.
  std::size_t approx_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const std::string& s : storage_) bytes += sizeof(std::string) + s.capacity();
    bytes += map_.size() * (sizeof(std::string_view) + sizeof(const std::string*) +
                            2 * sizeof(void*));
    return bytes;
  }

 private:
  /// deque: stable addresses under growth (the map keys view into it).
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, const std::string*> map_;
};

}  // namespace hxrc::rel
