// A frozen read view over a database: per-table row-count watermarks.
//
// A published catalog snapshot embeds one ReadView. MVCC readers route
// every index probe and row scan through it: rows at or above a table's
// watermark were appended by commits after the snapshot and are invisible,
// so a reader sees exactly the state the publishing commit saw — without a
// lock, while the (serialized) writer keeps appending. Watermarks are
// indexed by Table::slot(); a table the view does not know (created after
// the snapshot) reads as empty.
#pragma once

#include <cstddef>
#include <vector>

#include "rel/index.hpp"
#include "rel/table.hpp"

namespace hxrc::rel {

class ReadView {
 public:
  ReadView() = default;
  explicit ReadView(std::vector<std::size_t> watermarks)
      : watermarks_(std::move(watermarks)) {}

  /// Rows of `table` visible to this view.
  std::size_t visible_rows(const Table& table) const noexcept {
    const std::size_t slot = table.slot();
    if (slot == Table::kNoSlot) return table.row_count();  // standalone table
    return slot < watermarks_.size() ? watermarks_[slot] : 0;
  }

  void lookup_into(const Table& table, const Index& index, const Key& key,
                   std::vector<RowId>& out) const {
    index.lookup_into_at(key, visible_rows(table), out);
  }

  std::size_t bucket_size(const Table& table, const Index& index,
                          const Key& key) const {
    return index.bucket_size_at(key, visible_rows(table));
  }

  void range_into(const Table& table, const OrderedIndex& index, const Key& lo,
                  const Key& hi, std::vector<RowId>& out) const {
    index.range_into_at(lo, hi, visible_rows(table), out);
  }

 private:
  std::vector<std::size_t> watermarks_;
};

}  // namespace hxrc::rel
