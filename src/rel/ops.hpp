// Materialized relational operators.
//
// The hybrid query engine (Fig. 4) and the SQL executor are both built from
// these primitives. Operators consume and produce ResultSets (schema +
// rows); tables enter a pipeline through scan() or an index probe. All
// operators are set-based, mirroring the paper's insistence that both the
// object query and the response construction run as set operations inside
// the database.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rel/expr.hpp"
#include "rel/read_view.hpp"
#include "rel/table.hpp"

namespace hxrc::rel {

/// A materialized intermediate result.
struct ResultSet {
  TableSchema schema;
  std::vector<Row> rows;

  std::size_t size() const noexcept { return rows.size(); }
  bool empty() const noexcept { return rows.empty(); }

  /// Column position by name; throws TypeError when absent.
  std::size_t column(std::string_view name) const { return schema.require(name); }

  /// Renders an aligned ASCII table (examples and debugging).
  std::string pretty() const;
};

/// Full scan with optional predicate.
ResultSet scan(const Table& table, const ExprPtr& predicate = nullptr);

/// Index probe: all rows matching the key, as a ResultSet. With a ReadView,
/// only snapshot-visible rows match and the probe never locks or syncs.
ResultSet index_scan(const Table& table, const Index& index, const Key& key);
ResultSet index_scan(const Table& table, const Index& index, const Key& key,
                     const ReadView* view);

// ---- Non-materializing pipeline primitives ----
//
// These operate on RowId vectors over a base table instead of copying rows
// into ResultSets. A pipeline stage probes an index (index_scan_ids),
// narrows in place (filter_ids / for_each_match evaluating predicates
// against the base-table row), and copies rows out at most once, at the end
// (materialize). The Fig. 4 query engine is built on these.

/// Index probe returning row ids; the append-to-out form reuses `out`'s
/// capacity across probes (ids are appended, `out` is not cleared).
void index_scan_ids(const Index& index, const Key& key, std::vector<RowId>& out);
std::vector<RowId> index_scan_ids(const Index& index, const Key& key);

/// Keeps the ids whose base-table row satisfies the predicate. In-place and
/// order-stable; no row is copied. Single column-vs-constant comparisons
/// take the blocked scan kernel (below); other shapes evaluate per row.
void filter_ids(const Table& table, const Expr& predicate, std::vector<RowId>& ids);

/// Non-materializing full scan: appends the ids of rows satisfying
/// `predicate` in ascending order. The non-indexed filter path at scale:
/// column-vs-constant comparisons run as a BLOCK SCAN — rows classified
/// into dense per-block value lanes, then compared with a branchless,
/// auto-vectorizable kernel (8-wide under SSE2/NEON) instead of per-row
/// Expr dispatch — with exactly Expr::eval_bool's comparison semantics
/// (NULL never matches; numerics order before strings; int/int compares
/// exactly).
void scan_ids(const Table& table, const Expr& predicate, std::vector<RowId>& out);

/// True when `predicate` is a shape scan_ids/filter_ids evaluate with the
/// blocked kernel (exposed for tests and benches).
bool block_scannable(const Expr& predicate) noexcept;

/// Copies the identified base-table rows into a ResultSet — the single
/// materialization point at the end of a non-materializing stage.
ResultSet materialize(const Table& table, const std::vector<RowId>& ids);

/// Visits every base-table row under `key` without copying: `visit` is
/// called as visit(row, id). `scratch` is cleared and reused for the probe,
/// so a caller-owned vector amortizes allocations across calls.
template <typename Visitor>
void for_each_match(const Table& table, const Index& index, const Key& key,
                    std::vector<RowId>& scratch, Visitor&& visit) {
  scratch.clear();
  index.lookup_into(key, scratch);
  for (const RowId id : scratch) visit(table.row_unchecked(id), id);
}

/// MVCC form: probes through `view` (nullptr falls back to the syncing
/// probe above), visiting only snapshot-visible rows, never locking.
template <typename Visitor>
void for_each_match(const Table& table, const Index& index, const Key& key,
                    const ReadView* view, std::vector<RowId>& scratch,
                    Visitor&& visit) {
  scratch.clear();
  if (view != nullptr) {
    view->lookup_into(table, index, key, scratch);
  } else {
    index.lookup_into(key, scratch);
  }
  for (const RowId id : scratch) visit(table.row_unchecked(id), id);
}

/// Keeps rows satisfying the predicate.
ResultSet filter(ResultSet input, const Expr& predicate);

/// Keeps the named columns, in the given order.
ResultSet project(const ResultSet& input, const std::vector<std::string>& columns);

/// Computed projection: each output column is an expression over the input.
ResultSet project_exprs(const ResultSet& input,
                        const std::vector<std::pair<ExprPtr, Column>>& outputs);

enum class JoinType { kInner, kLeftOuter };

/// Hash equi-join on positional key columns. Output schema is left columns
/// followed by right columns (right columns are prefixed with `right_prefix`
/// when a name collision would result).
ResultSet hash_join(const ResultSet& left, const std::vector<std::size_t>& left_keys,
                    const ResultSet& right, const std::vector<std::size_t>& right_keys,
                    JoinType type = JoinType::kInner,
                    const std::string& right_prefix = "r_");

/// Convenience: equi-join by column names.
ResultSet hash_join_named(const ResultSet& left, const std::vector<std::string>& left_keys,
                          const ResultSet& right, const std::vector<std::string>& right_keys,
                          JoinType type = JoinType::kInner,
                          const std::string& right_prefix = "r_");

/// Join left rows against a table through one of its indexes: for each left
/// row, probe index with values of `left_key_columns`; emit left ++ table row.
ResultSet index_join(const ResultSet& left, const std::vector<std::size_t>& left_key_columns,
                     const Table& table, const Index& index,
                     const std::string& right_prefix = "r_");

/// Aggregate functions for group_by.
struct Aggregate {
  enum class Fn { kCount, kCountDistinct, kSum, kMin, kMax };
  Fn fn = Fn::kCount;
  /// Input column; ignored for kCount.
  std::size_t column = 0;
  /// Output column name.
  std::string name = "agg";
};

/// Hash group-by. Output schema: key columns (names preserved) followed by
/// one column per aggregate. With no key columns, produces a single row
/// (global aggregate), even over empty input.
ResultSet group_by(const ResultSet& input, const std::vector<std::size_t>& key_columns,
                   const std::vector<Aggregate>& aggregates);

/// Stable sort by (column, descending?) pairs.
ResultSet sort_by(ResultSet input, const std::vector<std::pair<std::size_t, bool>>& keys);

/// Removes duplicate rows (full-row comparison).
ResultSet distinct(ResultSet input);

/// Removes rows whose projection on `columns` duplicates an earlier row.
ResultSet distinct_on(const ResultSet& input, const std::vector<std::size_t>& columns);

ResultSet limit(ResultSet input, std::size_t n);

/// Set helpers used by tests.
ResultSet union_all(ResultSet a, const ResultSet& b);

}  // namespace hxrc::rel
