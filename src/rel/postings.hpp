// Compressed sorted posting lists for the generation-versioned indexes.
//
// A posting list is a strictly-ascending sequence of row ids. The
// generation machinery in rel/index.hpp only ever (a) appends ids in
// ascending order while building a generation, (b) concatenates an older
// generation's list with a newer one during a size-tiered merge (every id
// in the older generation precedes every id in the newer one), and
// (c) reads: decode all, decode the prefix below a snapshot watermark, or
// count that prefix. That access pattern makes delta/varint block
// compression safe to slot in at publish time with zero change to the MVCC
// contract — a published list is immutable and fully decodable without
// touching the writer.
//
// Wire format (per list):
//   byte stream : the first block's first id as an absolute LEB128 varint,
//                 then, per block, the 2nd..Nth ids as varints of the gap
//                 minus one (ids are strictly ascending, so every gap is
//                 >= 1);
//   skip table  : one SkipEntry {first id : u64, count : u32, byte offset
//                 : u32} per block AFTER the first, kept uncompressed so
//                 watermark cuts and bucket-size estimates are answered by
//                 binary search without decoding. Lists of up to kBlockSize
//                 ids — the overwhelming majority in value-keyed indexes —
//                 carry no skip table at all, which is what keeps the
//                 compressed form strictly smaller than raw even for
//                 singleton postings.
//
// Typical cost: dense postings (attribute-definition buckets, where gaps
// hover around the table's rows-per-document) take 1-2 bytes per id
// against 8 for a raw RowId — the compression ratio surfaced in
// BENCH_scale.json. `set_compression(false)` (HXRC_SCALE_BASELINE) keeps
// lists as raw RowId vectors so the pre/post comparison runs the same
// binary.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hxrc::rel {

using RowId = std::size_t;

class PostingList {
 public:
  static constexpr std::size_t kBlockSize = 128;

  /// Process-wide build-time switch (read once per list at first append).
  /// Published lists built under either setting stay readable; the flag
  /// only controls the physical form of lists built after the change. Used
  /// by bench_scale's uncompressed-postings baseline.
  static void set_compression(bool on) noexcept {
    compress_new_lists().store(on, std::memory_order_relaxed);
  }
  static bool compression() noexcept {
    return compress_new_lists().load(std::memory_order_relaxed);
  }

  PostingList() = default;

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Appends `id`; ids must be strictly ascending. Build-side only (runs
  /// under the index's sync mutex); published lists are never appended to.
  void push_back(RowId id) {
    if (count_ == 0) compressed_ = compression();
    if (!compressed_) {
      raw_.push_back(id);
      ++count_;
      last_ = static_cast<std::uint64_t>(id);
      return;
    }
    if (count_ == 0) {
      first_ = static_cast<std::uint64_t>(id);
      put_varint(first_);  // block 0's first id, absolute, in-stream
    } else if (tail_full()) {
      skip_.push_back(SkipEntry{static_cast<std::uint64_t>(id), 1,
                                static_cast<std::uint32_t>(bytes_.size())});
    } else {
      put_varint(static_cast<std::uint64_t>(id) - last_ - 1);
      if (!skip_.empty()) ++skip_.back().count;
    }
    ++count_;
    last_ = static_cast<std::uint64_t>(id);
  }

  /// Concatenates `other` (all of whose ids exceed back()). The size-tiered
  /// merge path: older ++ newer is just a skip-table splice plus a byte
  /// append — no re-encoding. `other`'s first block becomes a skip block of
  /// this list (its in-stream absolute first id is dropped; the new skip
  /// entry carries it).
  void append_all(const PostingList& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    if (compressed_ != other.compressed_) {
      // Mixed physical forms (the compression flag flipped mid-run — test
      // scenarios only): fall back to re-encoding id by id.
      std::vector<RowId> ids;
      other.append_to(ids);
      for (const RowId id : ids) push_back(id);
      return;
    }
    if (!compressed_) {
      raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
      count_ += other.count_;
      last_ = other.last_;
      return;
    }
    // Drop other's leading absolute varint; its value is other.first_.
    const std::uint8_t* p = other.bytes_.data();
    std::uint64_t absolute = 0;
    p = get_varint(p, absolute);
    const auto lead =
        static_cast<std::size_t>(p - other.bytes_.data());
    const std::uint32_t other_b0 = other.block0_count();
    const std::uint32_t tail =
        skip_.empty() ? block0_count() : skip_.back().count;
    if (tail + other_b0 <= kBlockSize) {
      // Fuse other's first block into this list's tail block: gap varints
      // are position-independent, so one bridging gap varint followed by a
      // verbatim byte copy re-blocks without re-encoding. This is what
      // keeps size-tiered merges of short lists — the common case for
      // value-keyed indexes — from accreting one skip entry per merge.
      put_varint(other.first_ - last_ - 1);
      const auto base = static_cast<std::uint32_t>(bytes_.size());
      bytes_.insert(bytes_.end(), other.bytes_.begin() + lead, other.bytes_.end());
      if (!skip_.empty()) skip_.back().count += other_b0;
      skip_.reserve(skip_.size() + other.skip_.size());
      for (const SkipEntry& entry : other.skip_) {
        skip_.push_back(SkipEntry{entry.first, entry.count,
                                  entry.offset - static_cast<std::uint32_t>(lead) +
                                      base});
      }
    } else {
      const auto base = static_cast<std::uint32_t>(bytes_.size());
      bytes_.insert(bytes_.end(), other.bytes_.begin() + lead, other.bytes_.end());
      skip_.reserve(skip_.size() + 1 + other.skip_.size());
      skip_.push_back(SkipEntry{other.first_, other_b0, base});
      for (const SkipEntry& entry : other.skip_) {
        skip_.push_back(SkipEntry{entry.first, entry.count,
                                  entry.offset - static_cast<std::uint32_t>(lead) +
                                      base});
      }
    }
    count_ += other.count_;
    last_ = other.last_;
  }

  /// Appends every id to `out` (does not clear it).
  void append_to(std::vector<RowId>& out) const {
    if (count_ == 0) return;
    if (!compressed_) {
      out.insert(out.end(), raw_.begin(), raw_.end());
      return;
    }
    decode_run(bytes_.data(), block0_count(), true, out);
    for (const SkipEntry& entry : skip_) {
      decode_skip_block(entry, entry.count, out);
    }
  }

  /// Appends the ids strictly below `limit` — the MVCC watermark cut. Whole
  /// blocks below the watermark decode without comparisons; at most one
  /// straddling block pays a per-id check.
  void append_below(std::size_t limit, std::vector<RowId>& out) const {
    if (count_ == 0) return;
    if (!compressed_) {
      const auto stop = std::lower_bound(raw_.begin(), raw_.end(), limit);
      out.insert(out.end(), raw_.begin(), stop);
      return;
    }
    if (first_ >= static_cast<std::uint64_t>(limit)) return;
    // Skip blocks whose first id is below the watermark; the LAST such
    // block (or block 0 when there is none) straddles, everything before
    // it is entirely below.
    const std::size_t s = blocks_starting_below(limit);
    if (s == 0) {
      decode_run_below(bytes_.data(), block0_count(), true, limit, out);
      return;
    }
    decode_run(bytes_.data(), block0_count(), true, out);
    for (std::size_t b = 0; b + 1 < s; ++b) {
      decode_skip_block(skip_[b], skip_[b].count, out);
    }
    decode_skip_block_below(skip_[s - 1], limit, out);
  }

  /// Number of ids strictly below `limit`; answered from the skip table
  /// plus one partial block decode.
  std::size_t count_below(std::size_t limit) const noexcept {
    if (count_ == 0) return 0;
    if (!compressed_) {
      return static_cast<std::size_t>(
          std::lower_bound(raw_.begin(), raw_.end(), limit) - raw_.begin());
    }
    if (first_ >= static_cast<std::uint64_t>(limit)) return 0;
    const std::size_t s = blocks_starting_below(limit);
    if (s == 0) {
      return count_run_below(bytes_.data(), block0_count(), true, limit);
    }
    std::size_t n = block0_count();
    for (std::size_t b = 0; b + 1 < s; ++b) n += skip_[b].count;
    const SkipEntry& straddler = skip_[s - 1];
    n += count_skip_block_below(straddler, limit);
    return n;
  }

  /// Releases building slack (vector growth headroom). Publish-time call:
  /// generations are immutable once published, so exact-fit storage is
  /// free thereafter.
  void shrink() noexcept {
    bytes_.shrink_to_fit();
    skip_.shrink_to_fit();
    raw_.shrink_to_fit();
  }

  /// Heap bytes held by this list's physical representation.
  std::size_t heap_bytes() const noexcept {
    return raw_.capacity() * sizeof(RowId) + bytes_.capacity() +
           skip_.capacity() * sizeof(SkipEntry);
  }

  /// Bytes an uncompressed RowId vector of the same ids would take — the
  /// denominator of the compression ratio.
  std::size_t raw_bytes() const noexcept { return count_ * sizeof(RowId); }

 private:
  struct SkipEntry {
    std::uint64_t first = 0;   // the block's first id (not in the byte stream)
    std::uint32_t count = 0;   // ids in the block (<= kBlockSize)
    std::uint32_t offset = 0;  // byte offset of the block's varint gap run
  };

  /// Ids in block 0 (blocks >= 1 carry their count in their skip entry).
  std::uint32_t block0_count() const noexcept {
    std::size_t tail = 0;
    for (const SkipEntry& entry : skip_) tail += entry.count;
    return static_cast<std::uint32_t>(count_ - tail);
  }

  /// Whether the current (last) block is full.
  bool tail_full() const noexcept {
    return (skip_.empty() ? block0_count() : skip_.back().count) == kBlockSize;
  }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  static const std::uint8_t* get_varint(const std::uint8_t* p, std::uint64_t& v) {
    std::uint64_t out = 0;
    int shift = 0;
    while (*p & 0x80) {
      out |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
      shift += 7;
    }
    v = out | (static_cast<std::uint64_t>(*p++) << shift);
    return p;
  }

  /// Number of skip blocks whose first id is < limit (they and block 0 hold
  /// every id below the watermark; the last of them straddles it).
  std::size_t blocks_starting_below(std::size_t limit) const noexcept {
    std::size_t lo = 0, hi = skip_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (skip_[mid].first < static_cast<std::uint64_t>(limit)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Decodes a run of `count` ids starting at `p`. With `leading_absolute`
  /// the run begins with an absolute varint (block 0); otherwise the caller
  /// supplies the first id via decode_skip_block.
  void decode_run(const std::uint8_t* p, std::uint32_t count, bool leading_absolute,
                  std::vector<RowId>& out) const {
    std::uint64_t id = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i == 0 && leading_absolute) {
        p = get_varint(p, id);
      } else if (i != 0) {
        std::uint64_t gap = 0;
        p = get_varint(p, gap);
        id += gap + 1;
      }
      out.push_back(static_cast<RowId>(id));
    }
  }

  void decode_run_below(const std::uint8_t* p, std::uint32_t count,
                        bool leading_absolute, std::size_t limit,
                        std::vector<RowId>& out) const {
    std::uint64_t id = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i == 0 && leading_absolute) {
        p = get_varint(p, id);
      } else if (i != 0) {
        std::uint64_t gap = 0;
        p = get_varint(p, gap);
        id += gap + 1;
      }
      if (id >= static_cast<std::uint64_t>(limit)) return;
      out.push_back(static_cast<RowId>(id));
    }
  }

  std::size_t count_run_below(const std::uint8_t* p, std::uint32_t count,
                              bool leading_absolute, std::size_t limit) const noexcept {
    std::uint64_t id = 0;
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i == 0 && leading_absolute) {
        p = get_varint(p, id);
      } else if (i != 0) {
        std::uint64_t gap = 0;
        p = get_varint(p, gap);
        id += gap + 1;
      }
      if (id >= static_cast<std::uint64_t>(limit)) return n;
      ++n;
    }
    return n;
  }

  void decode_skip_block(const SkipEntry& entry, std::uint32_t count,
                         std::vector<RowId>& out) const {
    std::uint64_t id = entry.first;
    out.push_back(static_cast<RowId>(id));
    const std::uint8_t* p = bytes_.data() + entry.offset;
    for (std::uint32_t i = 1; i < count; ++i) {
      std::uint64_t gap = 0;
      p = get_varint(p, gap);
      id += gap + 1;
      out.push_back(static_cast<RowId>(id));
    }
  }

  void decode_skip_block_below(const SkipEntry& entry, std::size_t limit,
                               std::vector<RowId>& out) const {
    std::uint64_t id = entry.first;
    const std::uint8_t* p = bytes_.data() + entry.offset;
    for (std::uint32_t i = 0; i < entry.count; ++i) {
      if (i != 0) {
        std::uint64_t gap = 0;
        p = get_varint(p, gap);
        id += gap + 1;
      }
      if (id >= static_cast<std::uint64_t>(limit)) break;
      out.push_back(static_cast<RowId>(id));
    }
  }

  std::size_t count_skip_block_below(const SkipEntry& entry,
                                     std::size_t limit) const noexcept {
    std::uint64_t id = entry.first;
    const std::uint8_t* p = bytes_.data() + entry.offset;
    std::size_t n = 0;
    for (std::uint32_t i = 0; i < entry.count; ++i) {
      if (i != 0) {
        std::uint64_t gap = 0;
        p = get_varint(p, gap);
        id += gap + 1;
      }
      if (id >= static_cast<std::uint64_t>(limit)) break;
      ++n;
    }
    return n;
  }

  static std::atomic<bool>& compress_new_lists() noexcept {
    static std::atomic<bool> on{true};
    return on;
  }

  std::vector<std::uint8_t> bytes_;  // varint stream (compressed form)
  std::vector<SkipEntry> skip_;      // one entry per block AFTER the first
  std::vector<RowId> raw_;           // raw form (compression disabled)
  std::uint64_t first_ = 0;          // block 0's first id (also in-stream)
  std::uint64_t last_ = 0;
  std::size_t count_ = 0;
  bool compressed_ = true;
};

}  // namespace hxrc::rel
