// Scalar expression trees evaluated against rows.
//
// Shared by the operator library (filter predicates) and the SQL planner
// (WHERE/HAVING/select expressions). Expressions are immutable and shared
// via shared_ptr so plans can reuse subtrees.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/value.hpp"

namespace hxrc::rel {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons -> INT 0/1 (NULL-propagating)
  kAnd, kOr,                     // three-valued logic
  kAdd, kSub, kMul, kDiv,        // arithmetic
};

/// A predicate of the shape `column <cmp> constant` (either operand order,
/// already normalised to column-on-the-left). The blocked scan kernel in
/// rel/ops.cpp evaluates this shape without per-row Expr dispatch.
struct ColumnCompare {
  std::size_t column = 0;
  BinOp op = BinOp::kEq;  // kEq..kGe only
  Value literal;          // never NULL
};

class Expr {
 public:
  enum class Kind { kColumn, kConst, kBinary, kNot, kIsNull };

  virtual ~Expr() = default;
  virtual Kind kind() const noexcept = 0;

  /// Decomposes a single column-vs-constant comparison; nullopt for every
  /// other shape (including LIKE, which reports kBinary but is not one).
  virtual std::optional<ColumnCompare> as_column_compare() const { return std::nullopt; }

  /// Evaluates against a row; NULL operands propagate (SQL semantics).
  virtual Value eval(const Row& row) const = 0;

  /// eval() interpreted as a predicate: NULL and 0 are false.
  bool eval_bool(const Row& row) const {
    const Value v = eval(row);
    if (v.is_null()) return false;
    if (v.type() == Type::kInt) return v.as_int() != 0;
    if (v.type() == Type::kDouble) return v.as_double() != 0.0;
    return !v.as_string().empty();
  }

  virtual std::string describe() const = 0;
};

/// Builders.
ExprPtr col(std::size_t index, std::string name = {});
ExprPtr lit(Value value);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr not_(ExprPtr operand);
ExprPtr is_null(ExprPtr operand);

/// SQL LIKE: '%' matches any run, '_' any single character. NULL operand
/// yields NULL. Non-string operands are rendered via Value::to_string.
ExprPtr like(ExprPtr operand, std::string pattern);

/// The LIKE pattern matcher itself (exposed for reuse and direct testing).
bool like_match(std::string_view text, std::string_view pattern) noexcept;

inline ExprPtr eq(ExprPtr a, ExprPtr b) { return binary(BinOp::kEq, std::move(a), std::move(b)); }
inline ExprPtr ne(ExprPtr a, ExprPtr b) { return binary(BinOp::kNe, std::move(a), std::move(b)); }
inline ExprPtr lt(ExprPtr a, ExprPtr b) { return binary(BinOp::kLt, std::move(a), std::move(b)); }
inline ExprPtr le(ExprPtr a, ExprPtr b) { return binary(BinOp::kLe, std::move(a), std::move(b)); }
inline ExprPtr gt(ExprPtr a, ExprPtr b) { return binary(BinOp::kGt, std::move(a), std::move(b)); }
inline ExprPtr ge(ExprPtr a, ExprPtr b) { return binary(BinOp::kGe, std::move(a), std::move(b)); }
inline ExprPtr and_(ExprPtr a, ExprPtr b) {
  return binary(BinOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr or_(ExprPtr a, ExprPtr b) {
  return binary(BinOp::kOr, std::move(a), std::move(b));
}

/// Conjunction of a (possibly empty) list; empty list means "true".
ExprPtr conjunction(std::vector<ExprPtr> terms);

/// Index of the referenced column when the expression is a bare column
/// reference; nullopt otherwise. Used by planners to detect equi-join keys.
std::optional<std::size_t> column_index(const Expr& expr) noexcept;

}  // namespace hxrc::rel
