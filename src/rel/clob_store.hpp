// Character-large-object storage with off-heap paging.
//
// The hybrid approach stores one CLOB per metadata attribute instance; the
// pure-CLOB and DB2/Oracle-style baselines store one per document. CLOBs are
// immutable once appended, matching the catalog's insert-and-query workload.
//
// At million-object scale the response-reconstruction payloads dominate the
// catalog's memory footprint while being touched only when a full document
// is rebuilt. The store therefore spills COLD payloads to a page file: once
// enable_paging() is armed, appended CLOBs accumulate until a segment's
// worth of payload is pending, then the whole run is sealed into one
// contiguous segment written through a ClobPager and the resident strings
// are released. Readers fetch spilled payloads through a small LRU cache of
// whole segments, so reconstructing one document (whose attribute CLOBs were
// appended together and thus share a segment) costs one page read.
//
// Concurrency contract (mirrors the MVCC row stores): ONE serialized writer
// appends and seals; any number of readers call get() on ids below a
// published snapshot watermark. Entries live in a StableVector (never
// moved); each entry's resident payload is published through one atomic
// pointer. Sealing retires the resident string through the epoch reclaimer,
// so a reader that loaded the pointer before the seal keeps dereferencing a
// live string; a reader that observes nullptr sees the entry's segment
// coordinates (release/acquire on the pointer exchange orders them).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "rel/stable_vector.hpp"
#include "util/epoch.hpp"

namespace hxrc::rel {

using ClobId = std::int64_t;

/// Backing storage for sealed CLOB segments. Implemented by
/// storage::PagedClobFile; the interface lives here so the rel layer does
/// not depend on the storage layer. The page file is derived cache data —
/// it is rebuilt by re-ingest/recovery, never part of the WAL/snapshot
/// durability contract.
class ClobPager {
 public:
  virtual ~ClobPager() = default;

  /// Persists one segment and returns its id. Writer-only.
  virtual std::uint32_t write_segment(std::string_view payload) = 0;

  /// Reads a whole segment back. Must tolerate concurrent write_segment of
  /// LATER segments (sealed segments are immutable).
  virtual std::string read_segment(std::uint32_t segment) = 0;
};

class ClobStore {
 public:
  static constexpr std::uint32_t kNoSegment = 0xffffffffu;

  ClobStore() = default;
  ClobStore(const ClobStore&) = delete;
  ClobStore& operator=(const ClobStore&) = delete;
  ClobStore(ClobStore&& other) noexcept { steal(other); }
  ClobStore& operator=(ClobStore&& other) noexcept {
    if (this != &other) {
      clear();
      steal(other);
    }
    return *this;
  }
  ~ClobStore() { clear(); }

  /// Arms paging: payloads spill to `pager` in ~segment_bytes segments;
  /// readers keep up to cache_segments spilled segments resident. The pager
  /// is borrowed, must outlive the store (or a clear()), and must be empty.
  /// Writer-context; call before the first append that should page.
  void enable_paging(ClobPager* pager, std::size_t segment_bytes = 4u << 20,
                     std::size_t cache_segments = 8) {
    pager_ = pager;
    segment_bytes_ = segment_bytes > 0 ? segment_bytes : 1;
    cache_capacity_ = cache_segments > 0 ? cache_segments : 1;
  }

  bool paging_enabled() const noexcept { return pager_ != nullptr; }

  /// Defers freeing of sealed entries' resident strings so concurrent MVCC
  /// readers holding the pointer stay safe. Without one, sealing frees
  /// immediately (single-threaded use).
  void set_reclaimer(util::EpochManager* reclaimer) noexcept {
    reclaimer_ = reclaimer;
  }

  /// Stores a CLOB and returns its id (ids are dense, starting at 0).
  /// Writer-only (external serialization). May seal a full segment.
  ClobId append(std::string content) {
    const std::size_t size = content.size();
    auto* owned = new std::string(std::move(content));
    Entry entry;
    entry.resident.store(owned, std::memory_order_relaxed);
    entry.length = static_cast<std::uint32_t>(size);
    entries_.push_back(std::move(entry));
    bytes_.fetch_add(size, std::memory_order_relaxed);
    resident_bytes_.fetch_add(size, std::memory_order_relaxed);
    pending_bytes_ += size;
    if (pager_ != nullptr && pending_bytes_ >= segment_bytes_) seal_pending();
    return static_cast<ClobId>(entries_.size() - 1);
  }

  /// The payload, resident or paged back in. By value: a spilled payload
  /// has no stable address to reference (it is copied out of a cache
  /// segment that LRU eviction may drop).
  std::string get(ClobId id) const {
    const auto index = static_cast<std::size_t>(id);
    if (id < 0 || index >= entries_.size()) {
      throw std::out_of_range("clob id out of range");
    }
    const Entry& entry = entries_[index];
    if (const std::string* resident =
            entry.resident.load(std::memory_order_acquire)) {
      return *resident;
    }
    return read_spilled(entry);
  }

  /// Force-seals the pending tail into a (possibly short) segment.
  /// Writer-context; no-op without a pager or pending payload. Benches call
  /// this after ingest so the resident footprint reflects steady state.
  void flush() {
    if (pager_ != nullptr) seal_pending();
  }

  std::size_t count() const noexcept { return entries_.size(); }

  /// Total logical payload bytes, resident or spilled.
  std::size_t payload_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Payload bytes currently held on-heap (the footprint approx_bytes
  /// charges; spilled payload is off-heap by design).
  std::size_t resident_bytes() const noexcept {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  std::size_t spilled_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed) -
           resident_bytes_.load(std::memory_order_relaxed);
  }

  /// Entries sealed into segments so far (a prefix of all ids).
  std::size_t sealed_count() const noexcept { return sealed_; }

  std::size_t cache_hits() const noexcept {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::size_t cache_misses() const noexcept {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  /// Moves every CLOB of `other` into this store (ids continue densely),
  /// leaving `other` empty. Returns the id offset applied to `other`'s ids.
  /// `other` must not have paging enabled (shard-local ingest stores don't).
  ClobId absorb(ClobStore& other) {
    const auto offset = static_cast<ClobId>(entries_.size());
    const std::size_t moved = other.entries_.size();
    for (std::size_t i = 0; i < moved; ++i) {
      const std::string* payload =
          other.entries_[i].resident.exchange(nullptr, std::memory_order_relaxed);
      append(std::move(*const_cast<std::string*>(payload)));
      delete payload;
    }
    other.clear();
    return offset;
  }

  /// Requires quiescence (restore/teardown paths). Drops segment
  /// coordinates too: re-enable paging with a fresh pager afterwards.
  void clear() noexcept {
    const std::size_t n = entries_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::string* resident =
          entries_[i].resident.exchange(nullptr, std::memory_order_relaxed);
      delete resident;
    }
    entries_.clear();
    bytes_.store(0, std::memory_order_relaxed);
    resident_bytes_.store(0, std::memory_order_relaxed);
    pending_bytes_ = 0;
    sealed_ = 0;
    pager_ = nullptr;
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    cache_index_.clear();
  }

 private:
  struct Entry {
    std::atomic<const std::string*> resident{nullptr};
    std::uint32_t segment = kNoSegment;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;

    Entry() = default;
    // Writer-side only (StableVector::push_back constructs in place before
    // the slot is published).
    Entry(Entry&& other) noexcept
        : resident(other.resident.exchange(nullptr, std::memory_order_relaxed)),
          segment(other.segment),
          offset(other.offset),
          length(other.length) {}
  };

  /// Seals entries [sealed_, count) into one segment: concatenated payload
  /// goes to the pager, then each entry's coordinates are set and its
  /// resident string retired. Coordinate stores happen BEFORE the pointer
  /// exchange (release) so a reader seeing nullptr (acquire) sees them.
  void seal_pending() {
    const std::size_t end = entries_.size();
    if (sealed_ == end) return;
    std::string payload;
    payload.reserve(pending_bytes_);
    for (std::size_t i = sealed_; i < end; ++i) {
      payload += *entries_[i].resident.load(std::memory_order_relaxed);
    }
    const std::uint32_t segment = pager_->write_segment(payload);
    std::uint32_t offset = 0;
    for (std::size_t i = sealed_; i < end; ++i) {
      Entry& entry = entries_[i];
      entry.segment = segment;
      entry.offset = offset;
      offset += entry.length;
      const std::string* resident =
          entry.resident.exchange(nullptr, std::memory_order_release);
      resident_bytes_.fetch_sub(resident->size(), std::memory_order_relaxed);
      if (reclaimer_ != nullptr) {
        reclaimer_->retire(resident);
      } else {
        delete resident;
      }
    }
    sealed_ = end;
    pending_bytes_ = 0;
  }

  std::string read_spilled(const Entry& entry) const {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    auto hit = cache_index_.find(entry.segment);
    if (hit == cache_index_.end()) {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      cache_.emplace_front(entry.segment, pager_->read_segment(entry.segment));
      cache_index_[entry.segment] = cache_.begin();
      while (cache_.size() > cache_capacity_) {
        cache_index_.erase(cache_.back().first);
        cache_.pop_back();
      }
      hit = cache_index_.find(entry.segment);
    } else {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_.splice(cache_.begin(), cache_, hit->second);
    }
    return hit->second->second.substr(entry.offset, entry.length);
  }

  void steal(ClobStore& other) noexcept {
    entries_ = std::move(other.entries_);
    bytes_.store(other.bytes_.exchange(0, std::memory_order_relaxed),
                 std::memory_order_relaxed);
    resident_bytes_.store(
        other.resident_bytes_.exchange(0, std::memory_order_relaxed),
        std::memory_order_relaxed);
    pending_bytes_ = std::exchange(other.pending_bytes_, 0);
    sealed_ = std::exchange(other.sealed_, 0);
    pager_ = std::exchange(other.pager_, nullptr);
    segment_bytes_ = other.segment_bytes_;
    cache_capacity_ = other.cache_capacity_;
    reclaimer_ = std::exchange(other.reclaimer_, nullptr);
    cache_ = std::move(other.cache_);
    cache_index_ = std::move(other.cache_index_);
    other.cache_.clear();
    other.cache_index_.clear();
  }

  StableVector<Entry> entries_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> resident_bytes_{0};
  std::size_t pending_bytes_ = 0;
  std::size_t sealed_ = 0;
  ClobPager* pager_ = nullptr;
  std::size_t segment_bytes_ = 4u << 20;
  util::EpochManager* reclaimer_ = nullptr;

  // Whole-segment LRU for spilled reads; front = most recent.
  mutable std::mutex cache_mutex_;
  mutable std::list<std::pair<std::uint32_t, std::string>> cache_;
  mutable std::unordered_map<
      std::uint32_t, std::list<std::pair<std::uint32_t, std::string>>::iterator>
      cache_index_;
  std::size_t cache_capacity_ = 8;
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::atomic<std::size_t> cache_misses_{0};
};

}  // namespace hxrc::rel
