// Character-large-object storage.
//
// The hybrid approach stores one CLOB per metadata attribute instance; the
// pure-CLOB and DB2/Oracle-style baselines store one per document. CLOBs are
// immutable once appended, matching the catalog's insert-and-query workload.
// Storage is a StableVector so MVCC readers can fetch CLOBs referenced by
// snapshot-visible rows while a serialized writer appends new ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "rel/stable_vector.hpp"

namespace hxrc::rel {

using ClobId = std::int64_t;

class ClobStore {
 public:
  ClobStore() = default;
  ClobStore(const ClobStore&) = delete;
  ClobStore& operator=(const ClobStore&) = delete;
  ClobStore(ClobStore&& other) noexcept
      : clobs_(std::move(other.clobs_)),
        bytes_(other.bytes_.exchange(0, std::memory_order_relaxed)) {}
  ClobStore& operator=(ClobStore&& other) noexcept {
    if (this != &other) {
      clobs_ = std::move(other.clobs_);
      bytes_.store(other.bytes_.exchange(0, std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    return *this;
  }

  /// Stores a CLOB and returns its id (ids are dense, starting at 0).
  /// Writer-only (external serialization).
  ClobId append(std::string content) {
    bytes_.fetch_add(content.size(), std::memory_order_relaxed);
    clobs_.push_back(std::move(content));
    return static_cast<ClobId>(clobs_.size() - 1);
  }

  const std::string& get(ClobId id) const {
    const auto index = static_cast<std::size_t>(id);
    if (id < 0 || index >= clobs_.size()) {
      throw std::out_of_range("clob id out of range");
    }
    return clobs_[index];
  }

  std::size_t count() const noexcept { return clobs_.size(); }

  /// Total payload bytes (excluding container overhead).
  std::size_t payload_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Moves every CLOB of `other` into this store (ids continue densely),
  /// leaving `other` empty. Returns the id offset applied to `other`'s ids.
  ClobId absorb(ClobStore& other) {
    const auto offset = static_cast<ClobId>(clobs_.size());
    const std::size_t moved = other.clobs_.size();
    for (std::size_t i = 0; i < moved; ++i) {
      append(std::move(other.clobs_[i]));
    }
    other.clear();
    return offset;
  }

  /// Requires quiescence (restore/teardown paths).
  void clear() noexcept {
    clobs_.clear();
    bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  StableVector<std::string> clobs_;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace hxrc::rel
