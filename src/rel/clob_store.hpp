// Character-large-object storage.
//
// The hybrid approach stores one CLOB per metadata attribute instance; the
// pure-CLOB and DB2/Oracle-style baselines store one per document. CLOBs are
// immutable once appended, matching the catalog's insert-and-query workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hxrc::rel {

using ClobId = std::int64_t;

class ClobStore {
 public:
  /// Stores a CLOB and returns its id (ids are dense, starting at 0).
  ClobId append(std::string content) {
    clobs_.push_back(std::move(content));
    bytes_ += clobs_.back().size();
    return static_cast<ClobId>(clobs_.size() - 1);
  }

  const std::string& get(ClobId id) const { return clobs_.at(static_cast<std::size_t>(id)); }

  std::size_t count() const noexcept { return clobs_.size(); }

  /// Total payload bytes (excluding vector overhead).
  std::size_t payload_bytes() const noexcept { return bytes_; }

  /// Moves every CLOB of `other` into this store (ids continue densely),
  /// leaving `other` empty. Returns the id offset applied to `other`'s ids.
  ClobId absorb(ClobStore& other) {
    const auto offset = static_cast<ClobId>(clobs_.size());
    clobs_.reserve(clobs_.size() + other.clobs_.size());
    for (std::string& clob : other.clobs_) {
      bytes_ += clob.size();
      clobs_.push_back(std::move(clob));
    }
    other.clear();
    return offset;
  }

  void clear() noexcept {
    clobs_.clear();
    bytes_ = 0;
  }

 private:
  std::vector<std::string> clobs_;
  std::size_t bytes_ = 0;
};

}  // namespace hxrc::rel
