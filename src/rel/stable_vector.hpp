// Pointer-stable append-only storage for MVCC row stores.
//
// std::vector reallocation moves every element, so a reader traversing rows
// while a writer appends would race even though the reader never looks past
// its snapshot watermark. StableVector never moves an element: storage is a
// spine of chunks whose capacities double (64, 128, 256, ...), so a row's
// address is fixed for the lifetime of the container and the element count
// is O(log n) chunks.
//
// Concurrency contract: ONE writer appends (the catalog's commit lock
// serializes writers); any number of readers may concurrently read indexes
// below a count they obtained from size() (or from a published snapshot
// watermark). The writer publishes each append with a release store of the
// new size after placement-constructing the element, so a reader that
// observes size() >= i+1 observes element i fully constructed. clear(),
// reserve-shrinking and destruction require external quiescence (no
// concurrent readers) — they are used by truncate/restore/teardown, which
// the catalog documents as single-threaded operations.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <utility>

namespace hxrc::rel {

template <typename T>
class StableVector {
 public:
  static constexpr std::size_t kBaseShift = 6;  // first chunk holds 64
  static constexpr std::size_t kBase = std::size_t{1} << kBaseShift;
  static constexpr std::size_t kMaxChunks = 48;

  StableVector() = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;
  StableVector(StableVector&& other) noexcept { steal(other); }
  StableVector& operator=(StableVector&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }
  ~StableVector() { destroy(); }

  std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }
  bool empty() const noexcept { return size() == 0; }

  const T& operator[](std::size_t i) const noexcept {
    const Loc loc = locate(i);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }
  T& operator[](std::size_t i) noexcept {
    const Loc loc = locate(i);
    return chunks_[loc.chunk].load(std::memory_order_relaxed)[loc.offset];
  }

  const T& back() const noexcept { return (*this)[size() - 1]; }

  /// Writer-only. The element is fully constructed before the new size is
  /// release-published, never moved afterwards.
  void push_back(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    const Loc loc = locate(i);
    T* chunk = chunks_[loc.chunk].load(std::memory_order_relaxed);
    if (chunk == nullptr) chunk = allocate_chunk(loc.chunk);
    ::new (static_cast<void*>(chunk + loc.offset)) T(std::move(value));
    size_.store(i + 1, std::memory_order_release);
  }

  /// Writer-only: pre-allocates chunks covering `total` elements.
  void reserve(std::size_t total) {
    if (total == 0) return;
    const std::size_t last = locate(total - 1).chunk;
    for (std::size_t c = 0; c <= last; ++c) {
      if (chunks_[c].load(std::memory_order_relaxed) == nullptr) allocate_chunk(c);
    }
  }

  /// Destroys all elements and frees all chunks. Requires quiescence.
  void clear() noexcept { destroy(); }

  class const_iterator {
   public:
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using reference = const T&;
    using pointer = const T*;

    const_iterator() = default;
    const_iterator(const StableVector* v, std::size_t i) : v_(v), i_(i) {}
    reference operator*() const noexcept { return (*v_)[i_]; }
    pointer operator->() const noexcept { return &(*v_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) noexcept {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) noexcept {
      return a.i_ != b.i_;
    }

   private:
    const StableVector* v_ = nullptr;
    std::size_t i_ = 0;
  };

  /// end() snapshots size() at call time, so a range-for over a growing
  /// vector visits the elements present when the loop started.
  const_iterator begin() const noexcept { return const_iterator(this, 0); }
  const_iterator end() const noexcept { return const_iterator(this, size()); }

 private:
  struct Loc {
    std::size_t chunk;
    std::size_t offset;
  };

  /// Chunk c holds kBase<<c elements; kBase*((1<<c)-1) precede it.
  static Loc locate(std::size_t i) noexcept {
    const std::size_t chunk =
        static_cast<std::size_t>(std::bit_width((i >> kBaseShift) + 1)) - 1;
    return Loc{chunk, i - ((kBase << chunk) - kBase)};
  }

  static constexpr std::size_t chunk_capacity(std::size_t c) noexcept {
    return kBase << c;
  }

  T* allocate_chunk(std::size_t c) {
    T* chunk = static_cast<T*>(::operator new(sizeof(T) * chunk_capacity(c),
                                              std::align_val_t(alignof(T))));
    chunks_[c].store(chunk, std::memory_order_release);
    return chunk;
  }

  void destroy() noexcept {
    std::size_t remaining = size_.load(std::memory_order_relaxed);
    for (std::size_t c = 0; c < kMaxChunks; ++c) {
      T* chunk = chunks_[c].load(std::memory_order_relaxed);
      if (chunk == nullptr) break;
      const std::size_t used = remaining < chunk_capacity(c) ? remaining : chunk_capacity(c);
      for (std::size_t i = 0; i < used; ++i) chunk[i].~T();
      remaining -= used;
      ::operator delete(chunk, std::align_val_t(alignof(T)));
      chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  void steal(StableVector& other) noexcept {
    for (std::size_t c = 0; c < kMaxChunks; ++c) {
      chunks_[c].store(other.chunks_[c].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other.chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
  }

  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<std::size_t> size_{0};
};

}  // namespace hxrc::rel
