#include "rel/serialize.hpp"

#include <charconv>
#include <cstring>
#include <istream>
#include <ostream>

namespace hxrc::rel {

namespace {

void write_bytes(std::ostream& out, const std::string& bytes) {
  out << bytes.size() << ' ';
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out << '\n';
}

std::string read_bytes(std::istream& in) {
  std::size_t length = 0;
  if (!(in >> length)) throw SerializeError("expected a byte-length");
  in.get();  // the single separator space
  std::string bytes(length, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in.gcount()) != length) {
    throw SerializeError("truncated byte payload");
  }
  return bytes;
}

void write_value(std::ostream& out, const Value& value) {
  switch (value.type()) {
    case Type::kNull:
      out << "N\n";
      break;
    case Type::kInt:
      out << "I " << value.as_int() << '\n';
      break;
    case Type::kDouble: {
      char buf[32];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value.as_double());
      (void)ec;
      out << "D " << std::string_view(buf, static_cast<std::size_t>(ptr - buf)) << '\n';
      break;
    }
    case Type::kString:
      out << "S ";
      out << value.as_string().size() << ' ';
      out.write(value.as_string().data(),
                static_cast<std::streamsize>(value.as_string().size()));
      out << '\n';
      break;
  }
}

Value read_value(std::istream& in) {
  std::string tag;
  if (!(in >> tag)) throw SerializeError("expected a value tag");
  if (tag == "N") return Value::null();
  if (tag == "I") {
    std::int64_t v = 0;
    if (!(in >> v)) throw SerializeError("bad integer value");
    return Value(v);
  }
  if (tag == "D") {
    double v = 0.0;
    if (!(in >> v)) throw SerializeError("bad double value");
    return Value(v);
  }
  if (tag == "S") return Value(read_bytes(in));
  throw SerializeError("unknown value tag '" + tag + "'");
}

}  // namespace

void save_database(const Database& db, std::ostream& out) {
  out << "HXRCDB 1\n";

  out << "clobs " << db.clobs().count() << '\n';
  for (std::size_t c = 0; c < db.clobs().count(); ++c) {
    write_bytes(out, db.clobs().get(static_cast<ClobId>(c)));
  }

  for (const std::string& name : db.table_names()) {
    const Table& table = *db.table(name);
    out << "table ";
    write_bytes(out, name);
    out << table.schema().size() << ' ' << table.row_count() << '\n';
    for (const Row& row : table.rows()) {
      for (const Value& value : row) write_value(out, value);
    }
  }
  out << "end\n";
  if (!out) throw SerializeError("write failed");
}

void load_database_into(Database& db, std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "HXRCDB" || version != 1) {
    throw SerializeError("not an HXRCDB version-1 stream");
  }

  std::string token;
  if (!(in >> token) || token != "clobs") throw SerializeError("expected clobs section");
  std::size_t clob_count = 0;
  in >> clob_count;
  db.clobs().clear();
  for (std::size_t c = 0; c < clob_count; ++c) {
    db.clobs().append(read_bytes(in));
  }

  // Truncate every existing table; the stream refills the ones it has.
  for (const std::string& name : db.table_names()) {
    db.require_table(name).truncate();
  }

  while (in >> token) {
    if (token == "end") return;
    if (token != "table") throw SerializeError("expected a table section, got '" + token + "'");
    const std::string name = read_bytes(in);
    std::size_t cols = 0;
    std::size_t rows = 0;
    if (!(in >> cols >> rows)) throw SerializeError("bad table header");
    Table* table = db.table(name);
    if (table == nullptr) {
      throw SerializeError("stream contains unknown table '" + name + "'");
    }
    if (table->schema().size() != cols) {
      throw SerializeError("arity mismatch for table '" + name + "'");
    }
    for (std::size_t r = 0; r < rows; ++r) {
      Row row;
      row.reserve(cols);
      for (std::size_t c = 0; c < cols; ++c) row.push_back(read_value(in));
      table->append(std::move(row));
    }
  }
  throw SerializeError("missing end marker");
}

// ---- binary format -------------------------------------------------------
//
//   "HXRCDBB1"
//   u64 clob_count; per clob: u64 len, bytes
//   u32 table_count; per table: str name, u32 cols, u64 rows, rows*cols values
//   value := u8 tag (0 NULL, 1 INT, 2 DOUBLE, 3 STRING)
//            | i64 LE | double bit pattern LE | u32 len + bytes
//   "HXRCDBE1"

namespace {

constexpr char kBinMagic[8] = {'H', 'X', 'R', 'C', 'D', 'B', 'B', '1'};
constexpr char kBinEnd[8] = {'H', 'X', 'R', 'C', 'D', 'B', 'E', '1'};

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

void get_exact(std::istream& in, char* buf, std::size_t n) {
  in.read(buf, static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw SerializeError("truncated binary database stream");
  }
}

std::uint32_t get_u32(std::istream& in) {
  char buf[4];
  get_exact(in, buf, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  char buf[8];
  get_exact(in, buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

void put_str(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_str(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::string s(n, '\0');
  if (n > 0) get_exact(in, s.data(), n);
  return s;
}

void put_value(std::ostream& out, const Value& value) {
  switch (value.type()) {
    case Type::kNull:
      out.put(0);
      break;
    case Type::kInt:
      out.put(1);
      put_u64(out, static_cast<std::uint64_t>(value.as_int()));
      break;
    case Type::kDouble: {
      out.put(2);
      const double d = value.as_double();
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      put_u64(out, bits);
      break;
    }
    case Type::kString:
      // Interned values serialize identically to owned strings — by content.
      out.put(3);
      put_str(out, value.as_string());
      break;
  }
}

Value get_value(std::istream& in) {
  char tag = 0;
  get_exact(in, &tag, 1);
  switch (tag) {
    case 0:
      return Value::null();
    case 1:
      return Value(static_cast<std::int64_t>(get_u64(in)));
    case 2: {
      const std::uint64_t bits = get_u64(in);
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof d);
      return Value(d);
    }
    case 3:
      return Value(get_str(in));
    default:
      throw SerializeError("unknown binary value tag " + std::to_string(int(tag)));
  }
}

}  // namespace

void save_database_binary(const Database& db, std::ostream& out) {
  out.write(kBinMagic, sizeof kBinMagic);
  put_u64(out, db.clobs().count());
  for (std::size_t c = 0; c < db.clobs().count(); ++c) {
    const std::string& clob = db.clobs().get(static_cast<ClobId>(c));
    put_u64(out, clob.size());
    out.write(clob.data(), static_cast<std::streamsize>(clob.size()));
  }
  const auto names = db.table_names();
  put_u32(out, static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Table& table = *db.table(name);
    put_str(out, name);
    put_u32(out, static_cast<std::uint32_t>(table.schema().size()));
    put_u64(out, table.row_count());
    for (const Row& row : table.rows()) {
      for (const Value& value : row) put_value(out, value);
    }
  }
  out.write(kBinEnd, sizeof kBinEnd);
  if (!out) throw SerializeError("binary write failed");
}

void load_database_into_binary(Database& db, std::istream& in) {
  // Tolerate the single newline (or spaces) a text header leaves behind.
  while (in.peek() == '\n' || in.peek() == ' ' || in.peek() == '\r') in.get();
  char magic[8];
  get_exact(in, magic, sizeof magic);
  if (std::memcmp(magic, kBinMagic, sizeof magic) != 0) {
    throw SerializeError("not an HXRCDBB1 binary database stream");
  }
  db.clobs().clear();
  const std::uint64_t clob_count = get_u64(in);
  for (std::uint64_t c = 0; c < clob_count; ++c) {
    const std::uint64_t len = get_u64(in);
    std::string clob(static_cast<std::size_t>(len), '\0');
    if (len > 0) get_exact(in, clob.data(), static_cast<std::size_t>(len));
    db.clobs().append(std::move(clob));
  }
  for (const std::string& name : db.table_names()) {
    db.require_table(name).truncate();
  }
  const std::uint32_t table_count = get_u32(in);
  for (std::uint32_t t = 0; t < table_count; ++t) {
    const std::string name = get_str(in);
    const std::uint32_t cols = get_u32(in);
    const std::uint64_t rows = get_u64(in);
    Table* table = db.table(name);
    if (table == nullptr) {
      throw SerializeError("stream contains unknown table '" + name + "'");
    }
    if (table->schema().size() != cols) {
      throw SerializeError("arity mismatch for table '" + name + "'");
    }
    table->reserve(static_cast<std::size_t>(rows));
    for (std::uint64_t r = 0; r < rows; ++r) {
      Row row;
      row.reserve(cols);
      for (std::uint32_t c = 0; c < cols; ++c) row.push_back(get_value(in));
      table->append(std::move(row));
    }
  }
  char end[8];
  get_exact(in, end, sizeof end);
  if (std::memcmp(end, kBinEnd, sizeof end) != 0) {
    throw SerializeError("missing binary end marker");
  }
}

}  // namespace hxrc::rel
