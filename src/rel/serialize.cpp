#include "rel/serialize.hpp"

#include <charconv>
#include <istream>
#include <ostream>

namespace hxrc::rel {

namespace {

void write_bytes(std::ostream& out, const std::string& bytes) {
  out << bytes.size() << ' ';
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out << '\n';
}

std::string read_bytes(std::istream& in) {
  std::size_t length = 0;
  if (!(in >> length)) throw SerializeError("expected a byte-length");
  in.get();  // the single separator space
  std::string bytes(length, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in.gcount()) != length) {
    throw SerializeError("truncated byte payload");
  }
  return bytes;
}

void write_value(std::ostream& out, const Value& value) {
  switch (value.type()) {
    case Type::kNull:
      out << "N\n";
      break;
    case Type::kInt:
      out << "I " << value.as_int() << '\n';
      break;
    case Type::kDouble: {
      char buf[32];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value.as_double());
      (void)ec;
      out << "D " << std::string_view(buf, static_cast<std::size_t>(ptr - buf)) << '\n';
      break;
    }
    case Type::kString:
      out << "S ";
      out << value.as_string().size() << ' ';
      out.write(value.as_string().data(),
                static_cast<std::streamsize>(value.as_string().size()));
      out << '\n';
      break;
  }
}

Value read_value(std::istream& in) {
  std::string tag;
  if (!(in >> tag)) throw SerializeError("expected a value tag");
  if (tag == "N") return Value::null();
  if (tag == "I") {
    std::int64_t v = 0;
    if (!(in >> v)) throw SerializeError("bad integer value");
    return Value(v);
  }
  if (tag == "D") {
    double v = 0.0;
    if (!(in >> v)) throw SerializeError("bad double value");
    return Value(v);
  }
  if (tag == "S") return Value(read_bytes(in));
  throw SerializeError("unknown value tag '" + tag + "'");
}

}  // namespace

void save_database(const Database& db, std::ostream& out) {
  out << "HXRCDB 1\n";

  out << "clobs " << db.clobs().count() << '\n';
  for (std::size_t c = 0; c < db.clobs().count(); ++c) {
    write_bytes(out, db.clobs().get(static_cast<ClobId>(c)));
  }

  for (const std::string& name : db.table_names()) {
    const Table& table = *db.table(name);
    out << "table ";
    write_bytes(out, name);
    out << table.schema().size() << ' ' << table.row_count() << '\n';
    for (const Row& row : table.rows()) {
      for (const Value& value : row) write_value(out, value);
    }
  }
  out << "end\n";
  if (!out) throw SerializeError("write failed");
}

void load_database_into(Database& db, std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "HXRCDB" || version != 1) {
    throw SerializeError("not an HXRCDB version-1 stream");
  }

  std::string token;
  if (!(in >> token) || token != "clobs") throw SerializeError("expected clobs section");
  std::size_t clob_count = 0;
  in >> clob_count;
  db.clobs().clear();
  for (std::size_t c = 0; c < clob_count; ++c) {
    db.clobs().append(read_bytes(in));
  }

  // Truncate every existing table; the stream refills the ones it has.
  for (const std::string& name : db.table_names()) {
    db.require_table(name).truncate();
  }

  while (in >> token) {
    if (token == "end") return;
    if (token != "table") throw SerializeError("expected a table section, got '" + token + "'");
    const std::string name = read_bytes(in);
    std::size_t cols = 0;
    std::size_t rows = 0;
    if (!(in >> cols >> rows)) throw SerializeError("bad table header");
    Table* table = db.table(name);
    if (table == nullptr) {
      throw SerializeError("stream contains unknown table '" + name + "'");
    }
    if (table->schema().size() != cols) {
      throw SerializeError("arity mismatch for table '" + name + "'");
    }
    for (std::size_t r = 0; r < rows; ++r) {
      Row row;
      row.reserve(cols);
      for (std::size_t c = 0; c < cols; ++c) row.push_back(read_value(in));
      table->append(std::move(row));
    }
  }
  throw SerializeError("missing end marker");
}

}  // namespace hxrc::rel
