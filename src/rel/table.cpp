#include "rel/table.hpp"

#include <algorithm>

namespace hxrc::rel {

void Table::validate(const Row& row) const {
  if (row.size() != schema_.size()) {
    throw TypeError("table '" + name_ + "': row arity " + std::to_string(row.size()) +
                    " != schema arity " + std::to_string(schema_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!type_compatible(schema_.column(i).type, row[i])) {
      throw TypeError("table '" + name_ + "': column '" + schema_.column(i).name +
                      "' expects " + std::string(to_string(schema_.column(i).type)) +
                      ", got " + std::string(to_string(row[i].type())));
    }
  }
}

RowId Table::append(Row row) {
  validate(row);
  return append_unchecked(std::move(row));
}

RowId Table::append_unchecked(Row row) {
  // Indexes are not touched: they catch up from their high-water mark on
  // the next probe (see rel/index.hpp).
  const RowId id = rows_.size();
  rows_.push_back(std::move(row));
  return id;
}

RowId Table::append_batch(std::vector<Row>&& rows) {
  for (const Row& row : rows) validate(row);
  return append_batch_unchecked(std::move(rows));
}

RowId Table::append_batch_unchecked(std::vector<Row>&& rows) {
  const RowId first = rows_.size();
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
  }
  rows.clear();
  return first;
}

void Table::merge_from(const Table& other) {
  if (other.schema().size() != schema_.size()) {
    throw TypeError("merge_from: arity mismatch between '" + name_ + "' and '" +
                    other.name() + "'");
  }
  rows_.reserve(rows_.size() + other.row_count());
  for (const Row& row : other.rows()) {
    append_unchecked(row);
  }
}

void Table::merge_move_from(Table& other) {
  if (other.schema().size() != schema_.size()) {
    throw TypeError("merge_move_from: arity mismatch between '" + name_ + "' and '" +
                    other.name() + "'");
  }
  rows_.reserve(rows_.size() + other.row_count());
  const std::size_t moved = other.rows_.size();
  for (std::size_t i = 0; i < moved; ++i) {
    append_unchecked(std::move(other.rows_[i]));
  }
  other.truncate();
}

void Table::truncate() {
  // Requires quiescence: rows and index generations are freed in place.
  rows_.clear();
  // Rebuild empty indexes with the same definitions.
  std::vector<std::unique_ptr<Index>> rebuilt;
  rebuilt.reserve(indexes_.size());
  for (const auto& old : indexes_) {
    rebuilt.push_back(old->make_empty());
    rebuilt.back()->attach(rows_);
    rebuilt.back()->set_reclaimer(reclaimer_);
  }
  indexes_ = std::move(rebuilt);
}

template <typename IndexT>
const IndexT* Table::create_index(const std::string& index_name,
                                  const std::vector<std::string>& column_names) {
  std::vector<std::size_t> key_columns;
  key_columns.reserve(column_names.size());
  for (const auto& column : column_names) {
    key_columns.push_back(schema_.require(column));
  }
  auto index = std::make_unique<IndexT>(index_name, std::move(key_columns));
  // Existing rows are picked up by the first probe's catch-up pass.
  index->attach(rows_);
  index->set_reclaimer(reclaimer_);
  const IndexT* raw = index.get();
  indexes_.push_back(std::move(index));
  return raw;
}

const HashIndex* Table::create_hash_index(const std::string& index_name,
                                          const std::vector<std::string>& column_names) {
  return create_index<HashIndex>(index_name, column_names);
}

const OrderedIndex* Table::create_ordered_index(
    const std::string& index_name, const std::vector<std::string>& column_names) {
  return create_index<OrderedIndex>(index_name, column_names);
}

const Index* Table::index(std::string_view index_name) const noexcept {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) return index.get();
  }
  return nullptr;
}

const Index* Table::index_on(const std::vector<std::size_t>& columns) const noexcept {
  for (const auto& index : indexes_) {
    if (index->key_columns() == columns) return index.get();
  }
  return nullptr;
}

std::size_t Table::approx_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Row& row : rows_) {
    bytes += sizeof(Row) + row.capacity() * sizeof(Value);
    for (const Value& value : row) {
      // Interned strings cost one pointer (already counted in sizeof(Value));
      // the dictionary bytes are counted once by the owning Interner.
      if (value.type() == Type::kString && !value.is_interned()) {
        bytes += value.as_string().capacity();
      }
    }
  }
  // Indexes: key copies per distinct key plus the physical posting bytes
  // (compressed lists report their real footprint; see rel/postings.hpp).
  for (const auto& index : indexes_) {
    const IndexStats st = index->stats();
    bytes += st.keys * (sizeof(Key) + index->key_columns().size() * sizeof(Value));
    bytes += st.postings_bytes;
  }
  return bytes;
}

IndexStats Table::postings_stats() const noexcept {
  IndexStats total;
  for (const auto& index : indexes_) total += index->stats();
  return total;
}

}  // namespace hxrc::rel
