// Typed values, rows, and table schemas for the relational engine.
//
// The engine supports the four types a metadata catalog needs: NULL, 64-bit
// integers, doubles, and strings (dates are stored as ISO-8601 strings,
// which order correctly lexicographically). Values are small value types;
// rows are vectors of values.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hxrc::rel {

enum class Type { kNull, kInt, kDouble, kString };

std::string_view to_string(Type type) noexcept;

class TypeError : public std::runtime_error {
 public:
  explicit TypeError(const std::string& message) : std::runtime_error(message) {}
};

class Value {
 public:
  /// NULL by default.
  Value() = default;
  Value(std::int64_t v) : data_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                       // NOLINT
  Value(std::string v) : data_(std::move(v)) {}       // NOLINT
  Value(std::string_view v) : data_(std::string(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}     // NOLINT

  static Value null() { return Value(); }

  /// Dictionary-encoded STRING: stores only the canonical pointer from an
  /// Interner. Behaves exactly like Value(*s) everywhere (type, compare,
  /// hash, accessors) but costs a pointer per row and compares by pointer
  /// when both sides are interned. The pointee must outlive the value (see
  /// rel/interner.hpp for the lifetime contract).
  static Value interned(const std::string* s) {
    Value v;
    v.data_ = s;
    return v;
  }

  Type type() const noexcept {
    switch (data_.index()) {
      case 1: return Type::kInt;
      case 2: return Type::kDouble;
      case 3:
      case 4: return Type::kString;
      default: return Type::kNull;
    }
  }

  bool is_null() const noexcept { return data_.index() == 0; }
  /// True for dictionary-encoded strings (footprint accounting in E10).
  bool is_interned() const noexcept { return data_.index() == 4; }
  bool is_numeric() const noexcept {
    return type() == Type::kInt || type() == Type::kDouble;
  }

  /// Typed accessors; throw TypeError on mismatch.
  std::int64_t as_int() const;
  double as_double() const;  // accepts kInt too (widening)
  const std::string& as_string() const;

  /// Zero-copy view of a string value; throws TypeError on mismatch. Used
  /// by in-place predicate evaluation over base-table rows, where the
  /// engine compares against the stored string without constructing
  /// temporary Values.
  std::string_view as_string_view() const { return as_string(); }

  /// Human-readable rendering (NULL prints as "NULL").
  std::string to_string() const;

  /// Total ordering for sorting and ordered indexes:
  /// NULL < numerics (compared as doubles) < strings.
  /// Returns <0, 0, >0.
  int compare(const Value& other) const noexcept;

  /// SQL-style equality: NULL equals nothing (including NULL).
  bool sql_equals(const Value& other) const noexcept {
    if (is_null() || other.is_null()) return false;
    return compare(other) == 0;
  }

  /// Structural equality (NULL == NULL): used by indexes and tests.
  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.compare(b) == 0 && a.is_null() == b.is_null();
  }
  friend bool operator<(const Value& a, const Value& b) noexcept {
    return a.compare(b) < 0;
  }

  std::size_t hash() const noexcept;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string, const std::string*>
      data_;
};

using Row = std::vector<Value>;

/// Composite key for indexes and grouping.
struct Key {
  std::vector<Value> parts;

  friend bool operator==(const Key& a, const Key& b) noexcept {
    if (a.parts.size() != b.parts.size()) return false;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
      if (!(a.parts[i] == b.parts[i])) return false;
    }
    return true;
  }
  friend bool operator<(const Key& a, const Key& b) noexcept {
    const std::size_t n = std::min(a.parts.size(), b.parts.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int c = a.parts[i].compare(b.parts[i]);
      if (c != 0) return c < 0;
    }
    return a.parts.size() < b.parts.size();
  }
};

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto& part : key.parts) {
      h ^= part.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// A named, typed column.
struct Column {
  std::string name;
  Type type = Type::kString;
};

/// Ordered column list; resolves names to positions.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::initializer_list<Column> columns) : columns_(columns) {}
  explicit TableSchema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const noexcept { return columns_; }
  std::size_t size() const noexcept { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_.at(i); }

  /// Position of a column by name; nullopt when absent.
  std::optional<std::size_t> index_of(std::string_view name) const noexcept;

  /// Position of a column by name; throws TypeError when absent.
  std::size_t require(std::string_view name) const;

  void add(Column column) { columns_.push_back(std::move(column)); }

 private:
  std::vector<Column> columns_;
};

/// True when `value` is storable in a column of type `type` (NULL always is;
/// kInt widens into kDouble columns).
bool type_compatible(Type type, const Value& value) noexcept;

}  // namespace hxrc::rel
