#include "rel/expr.hpp"

namespace hxrc::rel {

namespace {

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Kind kind() const noexcept override { return Kind::kColumn; }

  Value eval(const Row& row) const override { return row.at(index_); }

  std::string describe() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }

  std::size_t index() const noexcept { return index_; }

 private:
  std::size_t index_;
  std::string name_;
};

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(Value value) : value_(std::move(value)) {}

  Kind kind() const noexcept override { return Kind::kConst; }
  Value eval(const Row&) const override { return value_; }
  std::string describe() const override { return value_.to_string(); }

 private:
  Value value_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Kind kind() const noexcept override { return Kind::kBinary; }

  std::optional<ColumnCompare> as_column_compare() const override {
    if (op_ != BinOp::kEq && op_ != BinOp::kNe && op_ != BinOp::kLt &&
        op_ != BinOp::kLe && op_ != BinOp::kGt && op_ != BinOp::kGe) {
      return std::nullopt;
    }
    const auto decompose = [this](const Expr& column_side, const Expr& const_side,
                                  bool flipped) -> std::optional<ColumnCompare> {
      const auto column = column_index(column_side);
      if (!column || const_side.kind() != Kind::kConst) return std::nullopt;
      Value literal = const_side.eval(Row{});
      if (literal.is_null()) return std::nullopt;  // NULL literal matches nothing
      BinOp op = op_;
      if (flipped) {
        switch (op_) {
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;  // kEq / kNe are symmetric
        }
      }
      return ColumnCompare{*column, op, std::move(literal)};
    };
    if (auto direct = decompose(*lhs_, *rhs_, false)) return direct;
    return decompose(*rhs_, *lhs_, true);
  }

  Value eval(const Row& row) const override {
    const Value a = lhs_->eval(row);

    // Short-circuit three-valued AND/OR.
    if (op_ == BinOp::kAnd || op_ == BinOp::kOr) {
      const bool a_known = !a.is_null();
      const bool a_true = a_known && truthy(a);
      if (op_ == BinOp::kAnd && a_known && !a_true) return Value(std::int64_t{0});
      if (op_ == BinOp::kOr && a_true) return Value(std::int64_t{1});
      const Value b = rhs_->eval(row);
      const bool b_known = !b.is_null();
      const bool b_true = b_known && truthy(b);
      if (op_ == BinOp::kAnd) {
        if (b_known && !b_true) return Value(std::int64_t{0});
        if (a_known && b_known) return Value(std::int64_t{1});
        return Value::null();
      }
      if (b_true) return Value(std::int64_t{1});
      if (a_known && b_known) return Value(std::int64_t{0});
      return Value::null();
    }

    const Value b = rhs_->eval(row);
    if (a.is_null() || b.is_null()) return Value::null();

    switch (op_) {
      case BinOp::kEq: return Value(std::int64_t{a.compare(b) == 0});
      case BinOp::kNe: return Value(std::int64_t{a.compare(b) != 0});
      case BinOp::kLt: return Value(std::int64_t{a.compare(b) < 0});
      case BinOp::kLe: return Value(std::int64_t{a.compare(b) <= 0});
      case BinOp::kGt: return Value(std::int64_t{a.compare(b) > 0});
      case BinOp::kGe: return Value(std::int64_t{a.compare(b) >= 0});
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv: return arith(a, b);
      default: return Value::null();
    }
  }

  std::string describe() const override {
    return "(" + lhs_->describe() + " " + op_name() + " " + rhs_->describe() + ")";
  }

 private:
  static bool truthy(const Value& v) noexcept {
    switch (v.type()) {
      case Type::kInt: return v.as_int() != 0;
      case Type::kDouble: return v.as_double() != 0.0;
      case Type::kString: return !v.as_string().empty();
      default: return false;
    }
  }

  Value arith(const Value& a, const Value& b) const {
    if (!a.is_numeric() || !b.is_numeric()) {
      if (op_ == BinOp::kAdd && a.type() == Type::kString && b.type() == Type::kString) {
        return Value(a.as_string() + b.as_string());  // string concatenation
      }
      throw TypeError("arithmetic on non-numeric values");
    }
    if (a.type() == Type::kInt && b.type() == Type::kInt && op_ != BinOp::kDiv) {
      const auto x = a.as_int();
      const auto y = b.as_int();
      switch (op_) {
        case BinOp::kAdd: return Value(x + y);
        case BinOp::kSub: return Value(x - y);
        case BinOp::kMul: return Value(x * y);
        default: break;
      }
    }
    const double x = a.as_double();
    const double y = b.as_double();
    switch (op_) {
      case BinOp::kAdd: return Value(x + y);
      case BinOp::kSub: return Value(x - y);
      case BinOp::kMul: return Value(x * y);
      case BinOp::kDiv: return Value(x / y);
      default: return Value::null();
    }
  }

  const char* op_name() const noexcept {
    switch (op_) {
      case BinOp::kEq: return "=";
      case BinOp::kNe: return "!=";
      case BinOp::kLt: return "<";
      case BinOp::kLe: return "<=";
      case BinOp::kGt: return ">";
      case BinOp::kGe: return ">=";
      case BinOp::kAnd: return "AND";
      case BinOp::kOr: return "OR";
      case BinOp::kAdd: return "+";
      case BinOp::kSub: return "-";
      case BinOp::kMul: return "*";
      case BinOp::kDiv: return "/";
    }
    return "?";
  }

  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  Kind kind() const noexcept override { return Kind::kNot; }

  Value eval(const Row& row) const override {
    const Value v = operand_->eval(row);
    if (v.is_null()) return Value::null();
    return Value(std::int64_t{operand_->eval_bool(row) ? 0 : 1});
  }

  std::string describe() const override { return "NOT " + operand_->describe(); }

 private:
  ExprPtr operand_;
};

class IsNullExpr final : public Expr {
 public:
  explicit IsNullExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  Kind kind() const noexcept override { return Kind::kIsNull; }

  Value eval(const Row& row) const override {
    return Value(std::int64_t{operand_->eval(row).is_null() ? 1 : 0});
  }

  std::string describe() const override { return operand_->describe() + " IS NULL"; }

 private:
  ExprPtr operand_;
};

class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr operand, std::string pattern)
      : operand_(std::move(operand)), pattern_(std::move(pattern)) {}

  Kind kind() const noexcept override { return Kind::kBinary; }

  Value eval(const Row& row) const override {
    const Value v = operand_->eval(row);
    if (v.is_null()) return Value::null();
    return Value(std::int64_t{like_match(v.to_string(), pattern_) ? 1 : 0});
  }

  std::string describe() const override {
    return "(" + operand_->describe() + " LIKE '" + pattern_ + "')";
  }

 private:
  ExprPtr operand_;
  std::string pattern_;
};

}  // namespace

bool like_match(std::string_view text, std::string_view pattern) noexcept {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

ExprPtr like(ExprPtr operand, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(operand), std::move(pattern));
}

ExprPtr col(std::size_t index, std::string name) {
  return std::make_shared<ColumnExpr>(index, std::move(name));
}

ExprPtr lit(Value value) { return std::make_shared<ConstExpr>(std::move(value)); }

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr not_(ExprPtr operand) { return std::make_shared<NotExpr>(std::move(operand)); }

ExprPtr is_null(ExprPtr operand) { return std::make_shared<IsNullExpr>(std::move(operand)); }

ExprPtr conjunction(std::vector<ExprPtr> terms) {
  if (terms.empty()) return lit(Value(std::int64_t{1}));
  ExprPtr acc = terms.front();
  for (std::size_t i = 1; i < terms.size(); ++i) {
    acc = and_(std::move(acc), std::move(terms[i]));
  }
  return acc;
}

std::optional<std::size_t> column_index(const Expr& expr) noexcept {
  if (expr.kind() != Expr::Kind::kColumn) return std::nullopt;
  return static_cast<const ColumnExpr&>(expr).index();
}

}  // namespace hxrc::rel
