// Row-store table with optional secondary indexes.
//
// Tables are append-only (plus truncate), matching a metadata catalog's
// insert-and-query workload. Concurrency contract: writes require external
// serialization (the catalog's commit lock); reads are safe concurrently
// with each other AND with a serialized writer, because row storage is a
// StableVector (appends never move existing rows) and MVCC readers only
// touch row ids below a published snapshot watermark. truncate() and
// destruction require quiescence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rel/index.hpp"
#include "rel/stable_vector.hpp"
#include "rel/value.hpp"

namespace hxrc::rel {

class Table {
 public:
  Table(std::string name, TableSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const noexcept { return name_; }
  const TableSchema& schema() const noexcept { return schema_; }
  std::size_t row_count() const noexcept { return rows_.size(); }
  const Row& row(RowId id) const {
    if (id >= rows_.size()) {
      throw TypeError("table '" + name_ + "': row id out of range");
    }
    return rows_[id];
  }
  /// Unchecked row access for hot loops iterating ids an index just
  /// produced (ids from this table's own indexes are always in range).
  const Row& row_unchecked(RowId id) const noexcept { return rows_[id]; }
  const StableVector<Row>& rows() const noexcept { return rows_; }

  /// Position of this table in its database's creation order; snapshot
  /// watermark vectors are indexed by it. kNoSlot for standalone tables.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t slot() const noexcept { return slot_; }
  void set_slot(std::size_t slot) noexcept { slot_ = slot; }

  /// Defers reclamation of superseded index generations to `reclaimer`;
  /// applies to existing and future indexes of this table.
  void set_reclaimer(util::EpochManager* reclaimer) noexcept {
    reclaimer_ = reclaimer;
    for (const auto& index : indexes_) index->set_reclaimer(reclaimer);
  }

  /// Syncs every index with the row store (see Index::sync).
  void sync_indexes() const {
    for (const auto& index : indexes_) index->sync();
  }

  /// Validates arity and types and appends; returns the row id. Index
  /// maintenance is deferred to the next probe (see rel/index.hpp).
  RowId append(Row row);

  /// Appends without per-value type checks (used by bulk merge of staged
  /// rows that were validated at staging time).
  RowId append_unchecked(Row row);

  /// Pre-sizes row storage for an expected total row count.
  void reserve(std::size_t total_rows) { rows_.reserve(total_rows); }

  /// Validates and appends every row with geometric storage growth; index
  /// maintenance is deferred to the next probe. `rows` is consumed.
  /// Returns the id of the first appended row.
  RowId append_batch(std::vector<Row>&& rows);

  /// append_batch without per-value type checks, for callers whose rows are
  /// typed correctly by construction (the shredder's row builders).
  RowId append_batch_unchecked(std::vector<Row>&& rows);

  /// Appends every row of `other` (schemas must have equal arity).
  void merge_from(const Table& other);

  /// Move-merges: like merge_from but steals the rows, leaving `other`
  /// empty. Used when draining parallel staging tables.
  void merge_move_from(Table& other);

  /// Removes all rows and clears indexes.
  void truncate();

  /// Creates an index over the named columns; returns a stable pointer.
  /// Existing rows are picked up lazily by the first probe.
  const HashIndex* create_hash_index(const std::string& index_name,
                                     const std::vector<std::string>& column_names);
  const OrderedIndex* create_ordered_index(const std::string& index_name,
                                           const std::vector<std::string>& column_names);

  /// Index by name; nullptr when absent.
  const Index* index(std::string_view index_name) const noexcept;

  /// First index (of any kind) whose key columns are exactly `columns`
  /// (ordered); nullptr when none exists.
  const Index* index_on(const std::vector<std::size_t>& columns) const noexcept;

  const std::vector<std::unique_ptr<Index>>& indexes() const noexcept { return indexes_; }

  /// Approximate heap footprint in bytes (storage experiment E10).
  std::size_t approx_bytes() const noexcept;

  /// Aggregated posting-list footprint across this table's indexes.
  IndexStats postings_stats() const noexcept;

 private:
  void validate(const Row& row) const;
  template <typename IndexT>
  const IndexT* create_index(const std::string& index_name,
                             const std::vector<std::string>& column_names);

  std::string name_;
  TableSchema schema_;
  StableVector<Row> rows_;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::size_t slot_ = kNoSlot;
  util::EpochManager* reclaimer_ = nullptr;
};

}  // namespace hxrc::rel
