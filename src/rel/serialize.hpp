// Database serialization: a simple, debuggable text format with
// length-prefixed strings (safe against embedded newlines/quotes).
//
// Layout:
//   HXRCDB 1
//   clobs <count>
//   <len> <bytes...>            (one per CLOB, byte-exact)
//   table <name-len> <name> <cols> <rows>
//   ... per row: one value per token:
//       N            NULL
//       I <int>
//       D <shortest-round-trip double>
//       S <len> <bytes...>
//   end
//
// save_database writes every table (alphabetical) plus the CLOB store;
// index definitions are NOT serialized — load_database_into refills the
// target database's existing tables (created by the application with their
// indexes), so indexes rebuild on load.
#pragma once

#include <iosfwd>

#include "rel/database.hpp"

namespace hxrc::rel {

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& message) : std::runtime_error(message) {}
};

/// Writes the database (tables + CLOB store) to a stream.
void save_database(const Database& db, std::ostream& out);

/// Restores into an existing database whose tables were already created
/// (schemas must match by name/arity; extra tables in `db` that are absent
/// from the stream are truncated). Existing rows and CLOBs are discarded.
void load_database_into(Database& db, std::istream& in);

/// Stable binary form of the same content (the snapshot format of the
/// durability subsystem): little-endian fixed-width integers, raw IEEE
/// double bit patterns (exact round trip, unlike the text form's shortest
/// decimal), length-prefixed strings, and an end marker. Interned string
/// values serialize by content, so the bytes are independent of interner
/// pointer identity; on load they become owned strings.
void save_database_binary(const Database& db, std::ostream& out);

/// Binary counterpart of load_database_into (same table contract). Leading
/// ASCII whitespace is skipped so the section can follow a text header.
void load_database_into_binary(Database& db, std::istream& in);

}  // namespace hxrc::rel
