// Database serialization: a simple, debuggable text format with
// length-prefixed strings (safe against embedded newlines/quotes).
//
// Layout:
//   HXRCDB 1
//   clobs <count>
//   <len> <bytes...>            (one per CLOB, byte-exact)
//   table <name-len> <name> <cols> <rows>
//   ... per row: one value per token:
//       N            NULL
//       I <int>
//       D <shortest-round-trip double>
//       S <len> <bytes...>
//   end
//
// save_database writes every table (alphabetical) plus the CLOB store;
// index definitions are NOT serialized — load_database_into refills the
// target database's existing tables (created by the application with their
// indexes), so indexes rebuild on load.
#pragma once

#include <iosfwd>

#include "rel/database.hpp"

namespace hxrc::rel {

class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& message) : std::runtime_error(message) {}
};

/// Writes the database (tables + CLOB store) to a stream.
void save_database(const Database& db, std::ostream& out);

/// Restores into an existing database whose tables were already created
/// (schemas must match by name/arity; extra tables in `db` that are absent
/// from the stream are truncated). Existing rows and CLOBs are discarded.
void load_database_into(Database& db, std::istream& in);

}  // namespace hxrc::rel
