// Secondary indexes over table rows.
//
// Two physical forms: a hash index for equality probes (the common case in
// the Fig. 4 pipeline: attribute-definition and object-ID lookups) and an
// ordered index supporting range scans (element-value range predicates,
// global-order scans in the response builder).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "rel/value.hpp"

namespace hxrc::rel {

using RowId = std::size_t;

class Index {
 public:
  Index(std::string name, std::vector<std::size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}
  virtual ~Index() = default;

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::size_t>& key_columns() const noexcept { return key_columns_; }

  Key extract_key(const Row& row) const {
    Key key;
    key.parts.reserve(key_columns_.size());
    for (const std::size_t c : key_columns_) key.parts.push_back(row[c]);
    return key;
  }

  virtual void insert(const Row& row, RowId id) = 0;
  virtual std::vector<RowId> lookup(const Key& key) const = 0;
  virtual std::size_t entry_count() const noexcept = 0;

 private:
  std::string name_;
  std::vector<std::size_t> key_columns_;
};

class HashIndex final : public Index {
 public:
  using Index::Index;

  void insert(const Row& row, RowId id) override {
    map_.emplace(extract_key(row), id);
  }

  std::vector<RowId> lookup(const Key& key) const override {
    std::vector<RowId> out;
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    return out;
  }

  std::size_t entry_count() const noexcept override { return map_.size(); }

 private:
  std::unordered_multimap<Key, RowId, KeyHash> map_;
};

class OrderedIndex final : public Index {
 public:
  using Index::Index;

  void insert(const Row& row, RowId id) override {
    map_.emplace(extract_key(row), id);
  }

  std::vector<RowId> lookup(const Key& key) const override {
    std::vector<RowId> out;
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    return out;
  }

  /// Rows with lo <= key <= hi (inclusive bounds on the full composite key).
  std::vector<RowId> range(const Key& lo, const Key& hi) const {
    std::vector<RowId> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && !(hi < it->first); ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  std::size_t entry_count() const noexcept override { return map_.size(); }

 private:
  std::multimap<Key, RowId> map_;
};

}  // namespace hxrc::rel
