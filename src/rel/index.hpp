// Secondary indexes over table rows.
//
// Two physical forms: a hash index for equality probes (the common case in
// the Fig. 4 pipeline: attribute-definition and object-ID lookups) and an
// ordered index supporting range scans (element-value range predicates,
// global-order scans in the response builder).
//
// The probe API is append-to-out (`lookup_into`): hot paths reuse one
// scratch vector across thousands of probes instead of allocating a fresh
// std::vector per lookup. `bucket_size` exposes per-key entry counts as a
// cheap cardinality estimate so the query engine can order criteria by
// selectivity before touching any row.
#pragma once

#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rel/value.hpp"

namespace hxrc::rel {

using RowId = std::size_t;

class Index {
 public:
  Index(std::string name, std::vector<std::size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}
  virtual ~Index() = default;

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::size_t>& key_columns() const noexcept { return key_columns_; }

  Key extract_key(const Row& row) const {
    Key key;
    key.parts.reserve(key_columns_.size());
    for (const std::size_t c : key_columns_) key.parts.push_back(row[c]);
    return key;
  }

  virtual void insert(const Row& row, RowId id) = 0;

  /// Appends every row id under `key` to `out` (does not clear it). Hot
  /// paths pass a reused scratch vector; no allocation happens when the
  /// scratch capacity suffices.
  virtual void lookup_into(const Key& key, std::vector<RowId>& out) const = 0;

  /// Number of entries under `key` — a cheap cardinality estimate (no row
  /// access, no predicate evaluation) used to order criteria by estimated
  /// selectivity.
  virtual std::size_t bucket_size(const Key& key) const noexcept = 0;

  virtual std::size_t entry_count() const noexcept = 0;

  /// An empty index of the same physical kind over the same key columns
  /// (used by Table::truncate to rebuild definitions without RTTI probing).
  virtual std::unique_ptr<Index> make_empty() const = 0;

  /// Convenience wrapper; allocates per probe, so hot paths should prefer
  /// lookup_into with a reused scratch vector.
  std::vector<RowId> lookup(const Key& key) const {
    std::vector<RowId> out;
    lookup_into(key, out);
    return out;
  }

 private:
  std::string name_;
  std::vector<std::size_t> key_columns_;
};

class HashIndex final : public Index {
 public:
  using Index::Index;

  void insert(const Row& row, RowId id) override {
    map_.emplace(extract_key(row), id);
  }

  void lookup_into(const Key& key, std::vector<RowId>& out) const override {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  }

  std::size_t bucket_size(const Key& key) const noexcept override {
    auto [lo, hi] = map_.equal_range(key);
    return static_cast<std::size_t>(std::distance(lo, hi));
  }

  std::size_t entry_count() const noexcept override { return map_.size(); }

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<HashIndex>(name(), key_columns());
  }

 private:
  std::unordered_multimap<Key, RowId, KeyHash> map_;
};

class OrderedIndex final : public Index {
 public:
  using Index::Index;

  void insert(const Row& row, RowId id) override {
    map_.emplace(extract_key(row), id);
  }

  void lookup_into(const Key& key, std::vector<RowId>& out) const override {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  }

  std::size_t bucket_size(const Key& key) const noexcept override {
    auto [lo, hi] = map_.equal_range(key);
    return static_cast<std::size_t>(std::distance(lo, hi));
  }

  /// Rows with lo <= key <= hi (inclusive bounds on the full composite key).
  std::vector<RowId> range(const Key& lo, const Key& hi) const {
    std::vector<RowId> out;
    range_into(lo, hi, out);
    return out;
  }

  /// Append-to-out form of range().
  void range_into(const Key& lo, const Key& hi, std::vector<RowId>& out) const {
    for (auto it = map_.lower_bound(lo); it != map_.end() && !(hi < it->first); ++it) {
      out.push_back(it->second);
    }
  }

  std::size_t entry_count() const noexcept override { return map_.size(); }

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<OrderedIndex>(name(), key_columns());
  }

 private:
  std::multimap<Key, RowId> map_;
};

}  // namespace hxrc::rel
