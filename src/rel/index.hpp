// Secondary indexes over table rows.
//
// Two physical forms: a hash index for equality probes (the common case in
// the Fig. 4 pipeline: attribute-definition and object-ID lookups) and an
// ordered index supporting range scans (element-value range predicates,
// global-order scans in the response builder).
//
// The probe API is append-to-out (`lookup_into`): hot paths reuse one
// scratch vector across thousands of probes instead of allocating a fresh
// std::vector per lookup. `bucket_size` exposes per-key entry counts as a
// cheap cardinality estimate so the query engine can order criteria by
// selectivity before touching any row.
//
// Maintenance is DEFERRED to the read side. Writers never touch an index:
// Table::append* only grows the row store, and the first probe after an
// append catches the index up from its high-water mark (`synced_`) before
// answering. On a catalog's bulk-ingest-then-query workload this turns all
// index work during ingest into a single linear catch-up pass at the first
// query — the classic load-then-build-indexes shape — without callers ever
// seeing a stale answer. Catch-up is incremental (tables are append-only;
// truncate swaps in fresh indexes), so interleaved write/probe patterns pay
// exactly the old eager cost, never a full rebuild. Concurrent probes are
// safe: the synced check is an acquire load and stragglers serialize on a
// mutex (the table's contract already excludes probes concurrent with
// writes).
//
// Both index kinds store grouped postings — one map entry per DISTINCT key
// holding a vector of row ids — rather than one map node per row. Nearly
// every catch-up insert lands on an existing key: the cost is one
// hash/compare probe with a reused scratch key plus an amortised push_back,
// with no per-row node allocation and no per-row key copy. It also makes
// `bucket_size` O(1) instead of walking an equal_range, which the
// selectivity planner calls once per criterion.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rel/value.hpp"

namespace hxrc::rel {

using RowId = std::size_t;

class Index {
 public:
  Index(std::string name, std::vector<std::size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}
  virtual ~Index() = default;

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::size_t>& key_columns() const noexcept { return key_columns_; }

  /// Points the index at its table's row storage. Tables hold their indexes
  /// and live behind unique_ptr, so the reference is stable for the index's
  /// whole lifetime. Called once by Table when the index is installed.
  void attach(const std::vector<Row>& rows) noexcept { rows_ = &rows; }

  Key extract_key(const Row& row) const {
    Key key;
    key.parts.reserve(key_columns_.size());
    for (const std::size_t c : key_columns_) key.parts.push_back(row[c]);
    return key;
  }

  /// Appends every row id under `key` to `out` (does not clear it). Hot
  /// paths pass a reused scratch vector; no allocation happens when the
  /// scratch capacity suffices.
  void lookup_into(const Key& key, std::vector<RowId>& out) const {
    sync();
    do_lookup_into(key, out);
  }

  /// Number of entries under `key` — a cheap cardinality estimate (no row
  /// access, no predicate evaluation) used to order criteria by estimated
  /// selectivity.
  std::size_t bucket_size(const Key& key) const {
    sync();
    return do_bucket_size(key);
  }

  /// Every row contributes exactly one posting, so the logical entry count
  /// is the attached table's row count — no catch-up needed to answer.
  std::size_t entry_count() const noexcept { return rows_ ? rows_->size() : 0; }

  /// An empty index of the same physical kind over the same key columns
  /// (used by Table::truncate to rebuild definitions without RTTI probing).
  virtual std::unique_ptr<Index> make_empty() const = 0;

  /// Convenience wrapper; allocates per probe, so hot paths should prefer
  /// lookup_into with a reused scratch vector.
  std::vector<RowId> lookup(const Key& key) const {
    std::vector<RowId> out;
    lookup_into(key, out);
    return out;
  }

 protected:
  /// Brings the physical structure up to date with the attached row store.
  /// Lock-free when already synced (one acquire load); stragglers serialize
  /// on the mutex and re-check under it.
  void sync() const {
    if (rows_ == nullptr) return;
    if (synced_.load(std::memory_order_acquire) == rows_->size()) return;
    catch_up();
  }

  /// Adds one row to the physical structure. Only ever called from
  /// catch_up(), under sync_mutex_.
  virtual void do_insert(const Row& row, RowId id) = 0;
  virtual void do_lookup_into(const Key& key, std::vector<RowId>& out) const = 0;
  virtual std::size_t do_bucket_size(const Key& key) const = 0;

 private:
  void catch_up() const {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    std::size_t synced = synced_.load(std::memory_order_relaxed);
    const std::size_t total = rows_->size();
    auto* self = const_cast<Index*>(this);
    for (; synced < total; ++synced) self->do_insert((*rows_)[synced], synced);
    synced_.store(synced, std::memory_order_release);
  }

  std::string name_;
  std::vector<std::size_t> key_columns_;
  const std::vector<Row>* rows_ = nullptr;
  mutable std::atomic<std::size_t> synced_{0};
  mutable std::mutex sync_mutex_;
};

class HashIndex final : public Index {
 public:
  using Index::Index;

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<HashIndex>(name(), key_columns());
  }

 protected:
  void do_insert(const Row& row, RowId id) override { postings_for(row).push_back(id); }

  void do_lookup_into(const Key& key, std::vector<RowId>& out) const override {
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }

  std::size_t do_bucket_size(const Key& key) const override {
    const auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second.size();
  }

 private:
  std::vector<RowId>& postings_for(const Row& row) {
    // Probe with a reused scratch key: on the hit path (almost every insert
    // of a catch-up pass) nothing is allocated. Only a first-seen key pays
    // the copy-into-the-map cost. Inserts run under sync_mutex_, so the
    // mutable scratch is safe.
    scratch_.parts.clear();
    for (const std::size_t c : key_columns()) scratch_.parts.push_back(row[c]);
    const auto it = map_.find(scratch_);
    if (it != map_.end()) return it->second;
    return map_.emplace(std::move(scratch_), std::vector<RowId>{}).first->second;
  }

  std::unordered_map<Key, std::vector<RowId>, KeyHash> map_;
  Key scratch_;
};

class OrderedIndex final : public Index {
 public:
  using Index::Index;

  /// Rows with lo <= key <= hi (inclusive bounds on the full composite key).
  std::vector<RowId> range(const Key& lo, const Key& hi) const {
    std::vector<RowId> out;
    range_into(lo, hi, out);
    return out;
  }

  /// Append-to-out form of range().
  void range_into(const Key& lo, const Key& hi, std::vector<RowId>& out) const {
    sync();
    for (auto it = map_.lower_bound(lo); it != map_.end() && !(hi < it->first); ++it) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<OrderedIndex>(name(), key_columns());
  }

 protected:
  void do_insert(const Row& row, RowId id) override {
    scratch_.parts.clear();
    for (const std::size_t c : key_columns()) scratch_.parts.push_back(row[c]);
    const auto it = map_.find(scratch_);
    if (it != map_.end()) {
      it->second.push_back(id);
    } else {
      map_.emplace(std::move(scratch_), std::vector<RowId>{}).first->second.push_back(id);
    }
  }

  void do_lookup_into(const Key& key, std::vector<RowId>& out) const override {
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }

  std::size_t do_bucket_size(const Key& key) const override {
    const auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second.size();
  }

 private:
  std::map<Key, std::vector<RowId>> map_;
  Key scratch_;
};

}  // namespace hxrc::rel
