// Secondary indexes over table rows, generation-versioned for MVCC reads.
//
// Two physical forms: a hash index for equality probes (the common case in
// the Fig. 4 pipeline: attribute-definition and object-ID lookups) and an
// ordered index supporting range scans (element-value range predicates).
//
// The probe API is append-to-out (`lookup_into`): hot paths reuse one
// scratch vector across thousands of probes instead of allocating a fresh
// std::vector per lookup. `bucket_size` exposes per-key entry counts as a
// cheap cardinality estimate so the query engine can order criteria by
// selectivity before touching any row.
//
// Physical layout: an index is a list of immutable GENERATIONS, each
// covering a contiguous row range [begin, end) and holding grouped postings
// (one entry per distinct key, row ids ascending — catch-up inserts rows in
// increasing id order). The generation list is published through one atomic
// pointer. sync() — called by writers under the catalog's commit lock, or
// by the first probe in single-threaded use — builds a generation over the
// un-indexed row tail and merges size-tiered from the newest end (merge
// while the older neighbour holds at most twice the rows), which bounds the
// list at O(log n) generations for amortised O(log n) work per row.
//
// Superseded generation lists (and merged-away generations) are handed to
// an optional util::EpochManager: a concurrent reader that pinned an epoch
// before the merge keeps probing the old list safely until it unpins. With
// no reclaimer attached (staging tables, baselines, SQL examples — all
// single-threaded) superseded structures are deleted immediately.
//
// Probe forms:
//   lookup_into / bucket_size / range_into  — sync first, then probe the
//     whole index. Single-writer contexts; a probe may take sync_mutex_.
//   lookup_into_at / bucket_size_at / range_into_at — MVCC form: never
//     mutates, never locks. Probes the published generations, truncating
//     to rows below a snapshot watermark (postings are ascending, so a
//     straddling generation is cut with one binary search). Rows the
//     generations do not cover yet are matched by a linear tail scan —
//     normally empty, because the commit protocol syncs before publishing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rel/postings.hpp"
#include "rel/stable_vector.hpp"
#include "rel/value.hpp"
#include "util/epoch.hpp"

namespace hxrc::rel {

using RowId = std::size_t;

/// Physical footprint of an index's published generations (rel/postings.hpp
/// compression surfaces here: postings_bytes vs postings_raw_bytes is the
/// ratio reported in BENCH_scale.json).
struct IndexStats {
  std::size_t keys = 0;                // distinct keys summed over generations
  std::size_t postings = 0;            // total posting entries
  std::size_t postings_bytes = 0;      // physical posting-list heap bytes
  std::size_t postings_raw_bytes = 0;  // sizeof(RowId) per entry equivalent

  IndexStats& operator+=(const IndexStats& o) noexcept {
    keys += o.keys;
    postings += o.postings;
    postings_bytes += o.postings_bytes;
    postings_raw_bytes += o.postings_raw_bytes;
    return *this;
  }
};

class Index {
 public:
  static constexpr std::size_t kNoLimit = std::numeric_limits<std::size_t>::max();

  Index(std::string name, std::vector<std::size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}
  virtual ~Index() = default;

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::size_t>& key_columns() const noexcept { return key_columns_; }

  /// Points the index at its table's row storage. Tables hold their indexes
  /// and live behind unique_ptr, so the reference is stable for the index's
  /// whole lifetime. Called once by Table when the index is installed.
  void attach(const StableVector<Row>& rows) noexcept { rows_ = &rows; }

  /// Defers reclamation of superseded generations to `reclaimer` (nullptr:
  /// delete immediately — single-threaded use).
  void set_reclaimer(util::EpochManager* reclaimer) noexcept { reclaimer_ = reclaimer; }

  Key extract_key(const Row& row) const {
    Key key;
    key.parts.reserve(key_columns_.size());
    for (const std::size_t c : key_columns_) key.parts.push_back(row[c]);
    return key;
  }

  /// Appends every row id under `key` to `out` (does not clear it). Hot
  /// paths pass a reused scratch vector; no allocation happens when the
  /// scratch capacity suffices. Syncs first — single-writer contexts only.
  void lookup_into(const Key& key, std::vector<RowId>& out) const {
    sync();
    lookup_into_at(key, kNoLimit, out);
  }

  /// Number of entries under `key` — a cheap cardinality estimate (no row
  /// access, no predicate evaluation) used to order criteria by estimated
  /// selectivity. Syncs first — single-writer contexts only.
  std::size_t bucket_size(const Key& key) const {
    sync();
    return bucket_size_at(key, kNoLimit);
  }

  /// MVCC probe: row ids under `key` that are < `limit`, appended to `out`
  /// in ascending order. Never mutates the index, never blocks.
  virtual void lookup_into_at(const Key& key, std::size_t limit,
                              std::vector<RowId>& out) const = 0;
  virtual std::size_t bucket_size_at(const Key& key, std::size_t limit) const = 0;

  /// Every row contributes exactly one posting, so the logical entry count
  /// is the attached table's row count — no catch-up needed to answer.
  std::size_t entry_count() const noexcept { return rows_ ? rows_->size() : 0; }

  /// Physical footprint of the published generations (never syncs).
  virtual IndexStats stats() const noexcept = 0;

  /// An empty index of the same physical kind over the same key columns
  /// (used by Table::truncate to rebuild definitions without RTTI probing).
  virtual std::unique_ptr<Index> make_empty() const = 0;

  /// Convenience wrapper; allocates per probe, so hot paths should prefer
  /// lookup_into with a reused scratch vector.
  std::vector<RowId> lookup(const Key& key) const {
    std::vector<RowId> out;
    lookup_into(key, out);
    return out;
  }

  /// Brings the generations up to date with the attached row store.
  /// Lock-free when already synced (one acquire load); the catalog's commit
  /// protocol calls this for every index before publishing a snapshot, so
  /// MVCC probes never find uncovered rows.
  void sync() const {
    if (rows_ == nullptr) return;
    if (synced_rows() >= rows_->size()) return;
    const std::lock_guard<std::mutex> lock(sync_mutex_);
    const_cast<Index*>(this)->rebuild_to(rows_->size());
  }

 protected:
  /// Rows covered by the published generations (acquire load; no lock).
  virtual std::size_t synced_rows() const noexcept = 0;

  /// Builds/merges generations so they cover rows [0, target). Called with
  /// sync_mutex_ held; must re-check the covered prefix under the lock.
  virtual void rebuild_to(std::size_t target) = 0;

  /// Deletes `object` once no pinned reader can still reach it.
  template <typename T>
  void dispose(const T* object) const {
    if (object == nullptr) return;
    if (reclaimer_ != nullptr) {
      reclaimer_->retire(object);
    } else {
      delete object;
    }
  }

  bool row_matches(const Row& row, const Key& key) const {
    if (key.parts.size() != key_columns_.size()) return false;
    for (std::size_t i = 0; i < key_columns_.size(); ++i) {
      if (!(row[key_columns_[i]] == key.parts[i])) return false;
    }
    return true;
  }

  /// Defensive fallback for MVCC probes: linear scan of rows the published
  /// generations do not cover (normally an empty range — the commit
  /// protocol syncs before publishing).
  void scan_tail(const Key& key, std::size_t from, std::size_t limit,
                 std::vector<RowId>& out) const {
    if (rows_ == nullptr) return;
    const std::size_t to = std::min(limit, rows_->size());
    for (std::size_t r = from; r < to; ++r) {
      if (row_matches((*rows_)[r], key)) out.push_back(r);
    }
  }

  std::size_t count_tail(const Key& key, std::size_t from, std::size_t limit) const {
    if (rows_ == nullptr) return 0;
    const std::size_t to = std::min(limit, rows_->size());
    std::size_t n = 0;
    for (std::size_t r = from; r < to; ++r) {
      if (row_matches((*rows_)[r], key)) ++n;
    }
    return n;
  }

  const StableVector<Row>* rows_ = nullptr;
  mutable std::mutex sync_mutex_;

 private:
  std::string name_;
  std::vector<std::size_t> key_columns_;
  util::EpochManager* reclaimer_ = nullptr;
};

class HashIndex final : public Index {
 public:
  using Index::Index;
  ~HashIndex() override {
    const GenList* list = published_.load(std::memory_order_relaxed);
    if (list != nullptr) {
      for (const Gen* gen : list->gens) delete gen;
      delete list;
    }
  }

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<HashIndex>(name(), key_columns());
  }

  void lookup_into_at(const Key& key, std::size_t limit,
                      std::vector<RowId>& out) const override {
    const GenList* list = published_.load(std::memory_order_acquire);
    std::size_t covered = 0;
    if (list != nullptr) {
      covered = list->end;
      for (const Gen* gen : list->gens) {
        if (gen->begin >= limit) break;
        const auto it = gen->map.find(key);
        if (it == gen->map.end()) continue;
        if (gen->end <= limit) {
          it->second.append_to(out);
        } else {
          it->second.append_below(limit, out);
        }
      }
    }
    if (covered < limit) scan_tail(key, covered, limit, out);
  }

  std::size_t bucket_size_at(const Key& key, std::size_t limit) const override {
    const GenList* list = published_.load(std::memory_order_acquire);
    std::size_t covered = 0;
    std::size_t n = 0;
    if (list != nullptr) {
      covered = list->end;
      for (const Gen* gen : list->gens) {
        if (gen->begin >= limit) break;
        const auto it = gen->map.find(key);
        if (it == gen->map.end()) continue;
        n += gen->end <= limit ? it->second.size() : it->second.count_below(limit);
      }
    }
    if (covered < limit) n += count_tail(key, covered, limit);
    return n;
  }

  IndexStats stats() const noexcept override {
    IndexStats st;
    const GenList* list = published_.load(std::memory_order_acquire);
    if (list == nullptr) return st;
    for (const Gen* gen : list->gens) {
      st.keys += gen->map.size();
      for (const auto& [key, postings] : gen->map) {
        st.postings += postings.size();
        st.postings_bytes += postings.heap_bytes();
        st.postings_raw_bytes += postings.raw_bytes();
      }
    }
    return st;
  }

 protected:
  std::size_t synced_rows() const noexcept override {
    const GenList* list = published_.load(std::memory_order_acquire);
    return list == nullptr ? 0 : list->end;
  }

  void rebuild_to(std::size_t target) override {
    const GenList* current = published_.load(std::memory_order_relaxed);
    const std::size_t from = current == nullptr ? 0 : current->end;
    if (from >= target) return;

    auto* fresh = new Gen;
    fresh->begin = from;
    fresh->end = target;
    for (std::size_t r = from; r < target; ++r) {
      postings_for(fresh->map, (*rows_)[r]).push_back(r);
    }
    // The generation is immutable once published; drop building slack.
    for (auto& [key, ids] : fresh->map) ids.shrink();

    auto* next = new GenList;
    if (current != nullptr) next->gens = current->gens;
    next->gens.push_back(fresh);
    next->end = target;

    // Size-tiered merge from the newest end: keeps O(log n) generations.
    while (next->gens.size() >= 2) {
      const Gen* older = next->gens[next->gens.size() - 2];
      const Gen* newer = next->gens.back();
      if (older->row_span() > 2 * newer->row_span()) break;
      auto* merged = new Gen;
      merged->begin = older->begin;
      merged->end = newer->end;
      merged->map = older->map;
      for (const auto& [key, ids] : newer->map) {
        PostingList& list = merged->map[key];
        list.append_all(ids);
        list.shrink();
      }
      dispose(older);
      dispose(newer);
      next->gens.pop_back();
      next->gens.back() = merged;
    }

    published_.store(next, std::memory_order_release);
    dispose(current);
  }

 private:
  struct Gen {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::unordered_map<Key, PostingList, KeyHash> map;
    std::size_t row_span() const noexcept { return end - begin; }
  };
  struct GenList {
    std::vector<const Gen*> gens;
    std::size_t end = 0;
  };

  PostingList& postings_for(std::unordered_map<Key, PostingList, KeyHash>& map,
                            const Row& row) {
    // Probe with a reused scratch key: on the hit path (almost every insert
    // of a catch-up pass) nothing is allocated. Only a first-seen key pays
    // the copy-into-the-map cost. Inserts run under sync_mutex_, so the
    // mutable scratch is safe.
    scratch_.parts.clear();
    for (const std::size_t c : key_columns()) scratch_.parts.push_back(row[c]);
    const auto it = map.find(scratch_);
    if (it != map.end()) return it->second;
    return map.emplace(std::move(scratch_), PostingList{}).first->second;
  }

  std::atomic<const GenList*> published_{nullptr};
  Key scratch_;
};

class OrderedIndex final : public Index {
 public:
  using Index::Index;
  ~OrderedIndex() override {
    const GenList* list = published_.load(std::memory_order_relaxed);
    if (list != nullptr) {
      for (const Gen* gen : list->gens) delete gen;
      delete list;
    }
  }

  std::unique_ptr<Index> make_empty() const override {
    return std::make_unique<OrderedIndex>(name(), key_columns());
  }

  /// Rows with lo <= key <= hi (inclusive bounds on the full composite
  /// key), in key order, ids ascending within a key. Syncs first.
  std::vector<RowId> range(const Key& lo, const Key& hi) const {
    std::vector<RowId> out;
    range_into(lo, hi, out);
    return out;
  }

  void range_into(const Key& lo, const Key& hi, std::vector<RowId>& out) const {
    sync();
    range_into_at(lo, hi, kNoLimit, out);
  }

  /// MVCC range probe: never mutates, never blocks. Output is globally
  /// key-ordered (matches produced by multiple generations are merged).
  void range_into_at(const Key& lo, const Key& hi, std::size_t limit,
                     std::vector<RowId>& out) const {
    const GenList* list = published_.load(std::memory_order_acquire);
    std::map<Key, std::vector<RowId>> merged;
    std::size_t covered = 0;
    if (list != nullptr) {
      covered = list->end;
      for (const Gen* gen : list->gens) {  // oldest first: ids stay ascending
        if (gen->begin >= limit) break;
        auto it = std::lower_bound(gen->entries.begin(), gen->entries.end(), lo,
                                   [](const Entry& e, const Key& k) { return e.first < k; });
        for (; it != gen->entries.end() && !(hi < it->first); ++it) {
          auto& postings = merged[it->first];
          if (gen->end <= limit) {
            it->second.append_to(postings);
          } else {
            it->second.append_below(limit, postings);
          }
        }
      }
    }
    if (covered < limit && rows_ != nullptr) {
      const std::size_t to = std::min(limit, rows_->size());
      for (std::size_t r = covered; r < to; ++r) {
        Key key = extract_key((*rows_)[r]);
        if (!(key < lo) && !(hi < key)) merged[std::move(key)].push_back(r);
      }
    }
    for (const auto& [key, ids] : merged) {
      out.insert(out.end(), ids.begin(), ids.end());
    }
  }

  void lookup_into_at(const Key& key, std::size_t limit,
                      std::vector<RowId>& out) const override {
    const GenList* list = published_.load(std::memory_order_acquire);
    std::size_t covered = 0;
    if (list != nullptr) {
      covered = list->end;
      for (const Gen* gen : list->gens) {
        if (gen->begin >= limit) break;
        const PostingList* postings = gen->find(key);
        if (postings == nullptr) continue;
        if (gen->end <= limit) {
          postings->append_to(out);
        } else {
          postings->append_below(limit, out);
        }
      }
    }
    if (covered < limit) scan_tail(key, covered, limit, out);
  }

  std::size_t bucket_size_at(const Key& key, std::size_t limit) const override {
    const GenList* list = published_.load(std::memory_order_acquire);
    std::size_t covered = 0;
    std::size_t n = 0;
    if (list != nullptr) {
      covered = list->end;
      for (const Gen* gen : list->gens) {
        if (gen->begin >= limit) break;
        const PostingList* postings = gen->find(key);
        if (postings == nullptr) continue;
        n += gen->end <= limit ? postings->size() : postings->count_below(limit);
      }
    }
    if (covered < limit) n += count_tail(key, covered, limit);
    return n;
  }

  IndexStats stats() const noexcept override {
    IndexStats st;
    const GenList* list = published_.load(std::memory_order_acquire);
    if (list == nullptr) return st;
    for (const Gen* gen : list->gens) {
      st.keys += gen->entries.size();
      for (const Entry& entry : gen->entries) {
        st.postings += entry.second.size();
        st.postings_bytes += entry.second.heap_bytes();
        st.postings_raw_bytes += entry.second.raw_bytes();
      }
    }
    return st;
  }

 protected:
  std::size_t synced_rows() const noexcept override {
    const GenList* list = published_.load(std::memory_order_acquire);
    return list == nullptr ? 0 : list->end;
  }

  void rebuild_to(std::size_t target) override {
    const GenList* current = published_.load(std::memory_order_relaxed);
    const std::size_t from = current == nullptr ? 0 : current->end;
    if (from >= target) return;

    std::map<Key, PostingList> building;
    for (std::size_t r = from; r < target; ++r) {
      building[extract_key((*rows_)[r])].push_back(r);
    }
    auto* fresh = new Gen;
    fresh->begin = from;
    fresh->end = target;
    fresh->entries.reserve(building.size());
    for (auto& [key, ids] : building) {
      ids.shrink();  // immutable once published; drop building slack
      fresh->entries.emplace_back(key, std::move(ids));
    }

    auto* next = new GenList;
    if (current != nullptr) next->gens = current->gens;
    next->gens.push_back(fresh);
    next->end = target;

    while (next->gens.size() >= 2) {
      const Gen* older = next->gens[next->gens.size() - 2];
      const Gen* newer = next->gens.back();
      if (older->row_span() > 2 * newer->row_span()) break;
      auto* merged = new Gen;
      merged->begin = older->begin;
      merged->end = newer->end;
      merged->entries = merge_entries(older->entries, newer->entries);
      dispose(older);
      dispose(newer);
      next->gens.pop_back();
      next->gens.back() = merged;
    }

    published_.store(next, std::memory_order_release);
    dispose(current);
  }

 private:
  using Entry = std::pair<Key, PostingList>;

  struct Gen {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<Entry> entries;  // sorted by key
    std::size_t row_span() const noexcept { return end - begin; }

    const PostingList* find(const Key& key) const {
      const auto it =
          std::lower_bound(entries.begin(), entries.end(), key,
                           [](const Entry& e, const Key& k) { return e.first < k; });
      if (it == entries.end() || it->first < key || key < it->first) return nullptr;
      return &it->second;
    }
  };
  struct GenList {
    std::vector<const Gen*> gens;
    std::size_t end = 0;
  };

  /// Key-merge of two sorted entry lists; `a`'s ids precede `b`'s under a
  /// shared key (a covers older rows, so ids stay ascending).
  static std::vector<Entry> merge_entries(const std::vector<Entry>& a,
                                          const std::vector<Entry>& b) {
    std::vector<Entry> out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].first < b[j].first) {
        out.push_back(a[i++]);
      } else if (b[j].first < a[i].first) {
        out.push_back(b[j++]);
      } else {
        Entry entry = a[i++];
        entry.second.append_all(b[j++].second);
        entry.second.shrink();
        out.push_back(std::move(entry));
      }
    }
    while (i < a.size()) out.push_back(a[i++]);
    while (j < b.size()) out.push_back(b[j++]);
    return out;
  }

  std::atomic<const GenList*> published_{nullptr};
};

}  // namespace hxrc::rel
