#include "rel/value.hpp"

#include <charconv>
#include <cmath>
#include <functional>

namespace hxrc::rel {

std::string_view to_string(Type type) noexcept {
  switch (type) {
    case Type::kNull: return "NULL";
    case Type::kInt: return "INT";
    case Type::kDouble: return "DOUBLE";
    case Type::kString: return "STRING";
  }
  return "NULL";
}

std::int64_t Value::as_int() const {
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  throw TypeError("value is not an INT (got " + std::string(rel::to_string(type())) + ")");
}

double Value::as_double() const {
  if (const auto* v = std::get_if<double>(&data_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*v);
  throw TypeError("value is not numeric (got " + std::string(rel::to_string(type())) + ")");
}

const std::string& Value::as_string() const {
  if (const auto* v = std::get_if<std::string>(&data_)) return *v;
  if (const auto* v = std::get_if<const std::string*>(&data_)) return **v;
  throw TypeError("value is not a STRING (got " + std::string(rel::to_string(type())) + ")");
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNull: return "NULL";
    case Type::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case Type::kDouble: {
      char buf[32];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof buf, std::get<double>(data_));
      (void)ec;
      return std::string(buf, ptr);
    }
    case Type::kString: return as_string();
  }
  return "NULL";
}

int Value::compare(const Value& other) const noexcept {
  const Type a = type();
  const Type b = other.type();
  // NULLs sort first.
  if (a == Type::kNull || b == Type::kNull) {
    return (a == Type::kNull && b == Type::kNull) ? 0 : (a == Type::kNull ? -1 : 1);
  }
  const bool a_num = a != Type::kString;
  const bool b_num = b != Type::kString;
  if (a_num && b_num) {
    // Exact integer compare when both are ints; else double compare.
    if (a == Type::kInt && b == Type::kInt) {
      const auto x = std::get<std::int64_t>(data_);
      const auto y = std::get<std::int64_t>(other.data_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = as_double();
    const double y = other.as_double();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numerics before strings
  // Two values interned from the same dictionary share a pointer iff equal.
  if (data_.index() == 4 && other.data_.index() == 4 &&
      std::get<const std::string*>(data_) == std::get<const std::string*>(other.data_)) {
    return 0;
  }
  const int c = as_string().compare(other.as_string());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::size_t Value::hash() const noexcept {
  switch (type()) {
    case Type::kNull: return 0x6eed0e9da4d94a4fULL;
    case Type::kInt: {
      // Hash ints and integral doubles identically so mixed-type equi-joins
      // agree with compare().
      return std::hash<double>{}(static_cast<double>(std::get<std::int64_t>(data_)));
    }
    case Type::kDouble: return std::hash<double>{}(std::get<double>(data_));
    case Type::kString:
      // hash<string_view> matches hash<string> for equal content, so owned
      // and interned strings land in the same index bucket.
      return std::hash<std::string_view>{}(std::string_view(as_string()));
  }
  return 0;
}

std::optional<std::size_t> TableSchema::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t TableSchema::require(std::string_view name) const {
  if (const auto i = index_of(name)) return *i;
  throw TypeError("unknown column '" + std::string(name) + "'");
}

bool type_compatible(Type type, const Value& value) noexcept {
  if (value.is_null()) return true;
  switch (type) {
    case Type::kNull: return false;
    case Type::kInt: return value.type() == Type::kInt;
    case Type::kDouble: return value.is_numeric();
    case Type::kString: return value.type() == Type::kString;
  }
  return false;
}

}  // namespace hxrc::rel
