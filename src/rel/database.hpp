// The database: named tables, a CLOB store, and a SQL entry point.
//
// This is the "RDBMS" substrate the paper assumes. The hybrid catalog keeps
// its shredded-attribute tables, ordering tables, inverted lists, and
// per-attribute CLOBs in one Database instance.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "rel/clob_store.hpp"
#include "rel/interner.hpp"
#include "rel/ops.hpp"
#include "rel/table.hpp"

namespace hxrc::rel {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates a table; throws TypeError if the name is taken.
  Table& create_table(const std::string& name, TableSchema schema);

  /// nullptr when absent.
  Table* table(std::string_view name) noexcept;
  const Table* table(std::string_view name) const noexcept;

  /// Throws TypeError when absent.
  Table& require_table(std::string_view name);
  const Table& require_table(std::string_view name) const;

  bool drop_table(std::string_view name);

  std::vector<std::string> table_names() const;

  ClobStore& clobs() noexcept { return clobs_; }
  const ClobStore& clobs() const noexcept { return clobs_; }

  /// String dictionary for dictionary-encoded columns. Lives exactly as
  /// long as the tables, so interned values stored in them are always
  /// valid. Note the move constructor keeps the dictionary with its tables.
  Interner& interner() noexcept { return interner_; }
  const Interner& interner() const noexcept { return interner_; }

  /// Parses and executes one SQL statement. DDL/DML return an empty result
  /// (INSERT reports the row count in a single-cell result).
  ResultSet execute(std::string_view sql);

  /// Approximate total footprint: all tables + CLOB store (experiment E10).
  /// CLOBs count their RESIDENT bytes: payload spilled to a page file (see
  /// rel/clob_store.hpp paging) is off-heap by design.
  std::size_t approx_bytes() const noexcept;

  /// Aggregated posting-list footprint across all tables' indexes — the
  /// compression ratio reported in BENCH_scale.json.
  IndexStats postings_stats() const noexcept {
    IndexStats total;
    for (const auto& [name, table] : tables_) total += table->postings_stats();
    return total;
  }

  /// Defers reclamation of superseded index generations and sealed CLOB
  /// payloads to `reclaimer`; applies to all existing and future tables.
  void set_reclaimer(util::EpochManager* reclaimer) noexcept {
    reclaimer_ = reclaimer;
    for (auto& [name, table] : tables_) table->set_reclaimer(reclaimer);
    clobs_.set_reclaimer(reclaimer);
  }

  /// Brings every index of every table up to date with its row store; the
  /// catalog's commit protocol calls this before publishing a snapshot so
  /// MVCC probes never find uncovered rows.
  void sync_indexes() const {
    for (const auto& [name, table] : tables_) table->sync_indexes();
  }

  /// Slots ever assigned (one per created table, creation order); snapshot
  /// watermark vectors are sized by it.
  std::size_t slot_count() const noexcept { return slots_assigned_; }

  /// Current row counts by table slot — the watermark vector a snapshot
  /// freezes. Call with writers excluded (the commit lock).
  std::vector<std::size_t> watermarks() const {
    std::vector<std::size_t> marks(slots_assigned_, 0);
    for (const auto& [name, table] : tables_) {
      if (table->slot() < marks.size()) marks[table->slot()] = table->row_count();
    }
    return marks;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  ClobStore clobs_;
  Interner interner_;
  util::EpochManager* reclaimer_ = nullptr;
  std::size_t slots_assigned_ = 0;
};

}  // namespace hxrc::rel
