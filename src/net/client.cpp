#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hxrc::net {

namespace {

void write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed the connection must raise EPIPE,
    // not kill the client process with SIGPIPE.
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      // Shouldn't happen for a nonzero count on a socket; errno is stale
      // here, so don't report it.
      throw SocketError("send: wrote zero bytes");
    }
    if (errno == EINTR) continue;
    throw SocketError(std::string("send: ") + std::strerror(errno));
  }
}

}  // namespace

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port)
    : sock_(connect_tcp(host, port)) {
  set_nodelay(sock_.fd());
}

std::uint32_t BlockingClient::send_request(std::string_view body) {
  const std::uint32_t id = next_id_++;
  send_frame(FrameType::kRequest, id, body);
  return id;
}

void BlockingClient::send_frame(FrameType type, std::uint32_t request_id,
                                std::string_view body) {
  std::string wire;
  append_frame(wire, type, request_id, body);
  write_all(sock_.fd(), wire);
}

void BlockingClient::send_raw(std::string_view bytes) {
  write_all(sock_.fd(), bytes);
}

Frame BlockingClient::recv_frame() {
  for (;;) {
    DecodeResult result = decode_frame(inbuf_, max_payload_);
    if (result.status == DecodeStatus::kFrame) {
      inbuf_.erase(0, result.consumed);
      return std::move(result.frame);
    }
    if (result.status == DecodeStatus::kTooLarge) {
      throw SocketError("oversized frame from server (payload exceeds " +
                        std::to_string(max_payload_) + " bytes)");
    }
    if (result.status != DecodeStatus::kNeedMore) {
      throw SocketError("malformed frame from server");
    }
    char buffer[16 * 1024];
    const ssize_t n = ::read(sock_.fd(), buffer, sizeof(buffer));
    if (n > 0) {
      inbuf_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      throw SocketError(inbuf_.empty()
                            ? "connection closed by server"
                            : "connection closed by server mid-frame (" +
                                  std::to_string(inbuf_.size()) + " bytes buffered)");
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw SocketError("read timed out waiting for a frame");
    }
    throw SocketError(std::string("read: ") + std::strerror(errno));
  }
}

std::string BlockingClient::call(std::string_view body) {
  const std::uint32_t id = send_request(body);
  Frame frame = recv_frame();
  if (frame.request_id != id) {
    throw SocketError("response id " + std::to_string(frame.request_id) +
                      " does not match request id " + std::to_string(id));
  }
  return std::move(frame.payload);
}

void BlockingClient::shutdown_write() { ::shutdown(sock_.fd(), SHUT_WR); }

}  // namespace hxrc::net
