// Thin RAII + error-checked wrappers over POSIX TCP sockets.
//
// Everything net/ touches a file descriptor through goes through here, so
// fd lifetimes are single-owner by construction and every syscall failure
// carries errno context. Linux-only (epoll lives in server.cpp; this file
// is plain BSD sockets and would port, but the event loop would not).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hxrc::net {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& message) : std::runtime_error(message) {}
};

/// Move-only owner of a file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Binds + listens on 127.0.0.1:`port` (0 = kernel-chosen ephemeral port),
/// SO_REUSEADDR set. Throws SocketError.
Socket listen_tcp(std::uint16_t port, int backlog = 512);

/// The locally-bound port of a listening/connected socket.
std::uint16_t local_port(int fd);

/// Blocking connect to host:port (numeric IPv4 or a resolvable name).
Socket connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(int fd);
/// Disables Nagle: the server writes whole frames and the closed-loop
/// client sends one request per round trip — batching only adds latency.
void set_nodelay(int fd);
/// SO_RCVTIMEO + SO_SNDTIMEO on a blocking socket: reads and writes that
/// stall longer than `millis` fail with EAGAIN instead of hanging forever.
/// The federation router's per-shard calls run on top of this — a dead or
/// wedged shard must cost one bounded timeout, not a stuck worker.
/// 0 = never time out (the default state of a fresh socket).
void set_io_timeout(int fd, std::uint32_t millis);

}  // namespace hxrc::net
