#include "net/server.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/service.hpp"
#include "net/frame.hpp"

namespace hxrc::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Reads per EPOLLIN event before yielding back to the loop (fairness: one
/// fast peer must not starve the rest of the shard).
constexpr int kReadsPerEvent = 4;
/// Compact the input buffer once this many consumed bytes accumulate.
constexpr std::size_t kCompactThreshold = 256 * 1024;

}  // namespace

// ---------------------------------------------------------------------------
// EventLoop: one epoll shard. Connections live and die on this thread; the
// acceptor and dispatcher workers only ever touch the inbox + eventfd.
// ---------------------------------------------------------------------------

class CatalogServer::EventLoop {
 public:
  EventLoop(CatalogServer& server, std::size_t index)
      : server_(server), index_(index) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw SocketError("epoll_create1 failed");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      ::close(epoll_fd_);
      throw SocketError("eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }

  ~EventLoop() {
    // By destruction time the acceptor and dispatcher callbacks are joined
    // out, but their final posts may have landed after run() returned.
    discard_inbox();
    ::close(wake_fd_);
    ::close(epoll_fd_);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  void post_connection(int fd) {
    Op op;
    op.kind = Op::kNewConnection;
    op.fd = fd;
    post(std::move(op));
  }

  void post_response(std::uint64_t conn_id, std::uint32_t request_id,
                     std::string payload) {
    Op op;
    op.kind = Op::kResponse;
    op.conn_id = conn_id;
    op.request_id = request_id;
    op.payload = std::move(payload);
    post(std::move(op));
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

 private:
  static constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

  struct Op {
    enum Kind { kNewConnection, kResponse } kind = kNewConnection;
    int fd = -1;
    std::uint64_t conn_id = 0;
    std::uint32_t request_id = 0;
    std::string payload;
  };

  struct Connection {
    Socket sock;
    std::uint64_t id = 0;
    std::string inbuf;
    std::size_t inpos = 0;
    std::string outbuf;
    std::size_t outpos = 0;
    /// Requests submitted to the dispatcher whose response has not been
    /// queued to outbuf yet.
    std::size_t in_flight = 0;
    std::uint32_t armed = 0;  ///< epoll interest currently registered
    bool write_paused = false;
    bool peer_closed = false;
    /// Flush what is queued, then close (protocol error / drain cutoff).
    bool close_after_flush = false;
    Clock::time_point last_activity;
  };

  void post(Op op) {
    {
      std::lock_guard lock(mutex_);
      inbox_.push_back(std::move(op));
    }
    wake();
  }

  bool inbox_empty() {
    std::lock_guard lock(mutex_);
    return inbox_.empty();
  }

  void run() {
    std::vector<epoll_event> events(128);
    while (!server_.stopping_.load(std::memory_order_acquire)) {
      const bool draining = server_.draining_.load(std::memory_order_acquire);
      update_pause_state();

      int timeout_ms = 500;
      if (paused_) {
        timeout_ms = 1;  // poll the dispatcher queue for the low watermark
      } else if (draining) {
        timeout_ms = 10;
      } else if (server_.config_.idle_timeout.count() > 0) {
        timeout_ms = 100;
      }
      const int ready =
          ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                       timeout_ms);

      drain_inbox();
      for (int i = 0; i < ready; ++i) {
        if (events[static_cast<std::size_t>(i)].data.u64 == kWakeToken) {
          std::uint64_t counter = 0;
          [[maybe_unused]] const ssize_t n =
              ::read(wake_fd_, &counter, sizeof(counter));
          continue;
        }
        const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // closed earlier this iteration
        Connection& conn = *it->second;
        if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
          // Let a final read report whatever the kernel buffered, then EOF.
          conn.peer_closed = true;
        }
        if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) handle_readable(conn);
        it = conns_.find(id);
        if (it == conns_.end()) continue;
        if ((mask & EPOLLOUT) != 0) flush_writes(*it->second);
      }

      sweep_idle();
      if (draining && sweep_drain()) break;
    }
    close_all();
    discard_inbox();  // kNewConnection ops hold raw fds; don't leak them
  }

  /// Dispatcher-queue backpressure with hysteresis: pause reads at the
  /// high watermark, resume at the low one. Applied loop-wide — while
  /// paused no socket of this shard is read and no parsed frame is
  /// submitted, so saturation surfaces as TCP backpressure at the peers.
  void update_pause_state() {
    const std::size_t depth = server_.broker_.queue_depth();
    const bool want =
        paused_ ? depth > server_.pause_low_ : depth >= server_.pause_high_;
    if (want == paused_) return;
    paused_ = want;
    if (paused_) {
      server_.stats_.pauses.read_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& [id, conn] : conns_) update_interest(*conn);
    if (!paused_) {
      // Frames buffered while paused are waiting in inbufs; submit them
      // now, they would otherwise sit until the peer sends more bytes.
      for (auto it = conns_.begin(); it != conns_.end();) {
        Connection& conn = *it->second;
        ++it;  // parse_frames may erase the connection
        parse_frames(conn);
      }
    }
  }

  void drain_inbox() {
    std::vector<Op> batch;
    {
      std::lock_guard lock(mutex_);
      batch.swap(inbox_);
    }
    for (Op& op : batch) {
      if (op.kind == Op::kNewConnection) {
        add_connection(op.fd);
      } else {
        complete_response(op);
      }
    }
  }

  void add_connection(int fd) {
    if (server_.stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = Socket(fd);
    conn->id = server_.next_conn_.fetch_add(1, std::memory_order_relaxed);
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = 0;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return;  // conn destructor closes the fd
    }
    Connection& ref = *conn;
    conns_.emplace(conn->id, std::move(conn));
    server_.open_connections_.fetch_add(1, std::memory_order_acq_rel);
    update_interest(ref);
  }

  void complete_response(Op& op) {
    auto it = conns_.find(op.conn_id);
    if (it == conns_.end()) {
      server_.stats_.dropped_responses.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Connection& conn = *it->second;
    append_frame(conn.outbuf, FrameType::kResponse, op.request_id, op.payload);
    conn.in_flight--;
    server_.stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    flush_writes(conn);
  }

  void handle_readable(Connection& conn) {
    char buffer[kReadChunk];
    for (int round = 0; round < kReadsPerEvent; ++round) {
      if (paused_ || conn.write_paused || conn.close_after_flush) break;
      const ssize_t n = ::read(conn.sock.fd(), buffer, sizeof(buffer));
      if (n > 0) {
        conn.inbuf.append(buffer, static_cast<std::size_t>(n));
        server_.stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                          std::memory_order_relaxed);
        conn.last_activity = Clock::now();
        if (!parse_frames(conn)) return;  // connection died
        continue;
      }
      if (n == 0) {
        conn.peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    if (conn.peer_closed) {
      update_interest(conn);
      maybe_close_quiet(conn);
    }
  }

  /// Decodes and submits every complete frame in the input buffer, pausing
  /// at the dispatcher's high watermark. Returns false when the connection
  /// was closed. (Level-triggered epoll makes deferring safe: unread socket
  /// bytes re-raise EPOLLIN, and unparsed inbuf bytes are retried on the
  /// unpause path.)
  bool parse_frames(Connection& conn) {
    for (;;) {
      if (!paused_ &&
          server_.broker_.queue_depth() >= server_.pause_high_) {
        paused_ = true;
        server_.stats_.pauses.read_pauses.fetch_add(1, std::memory_order_relaxed);
        for (auto& [id, c] : conns_) update_interest(*c);
      }
      if (paused_) return true;

      const std::string_view pending =
          std::string_view(conn.inbuf).substr(conn.inpos);
      DecodeResult result = decode_frame(pending, server_.config_.max_frame_payload);
      if (result.status == DecodeStatus::kNeedMore) break;
      if (result.status == DecodeStatus::kBadMagic) {
        server_.stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_connection(conn);
        return false;
      }
      if (result.status == DecodeStatus::kTooLarge) {
        // The header is sound, so the id is real — answer it, then cut the
        // stream off rather than swallowing a payload past the cap.
        server_.stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        append_frame(conn.outbuf, FrameType::kError, result.request_id,
                     core::error_response(
                         core::ErrorCode::kValidation,
                         "frame payload exceeds limit (" +
                             std::to_string(server_.config_.max_frame_payload) +
                             " bytes)"));
        server_.stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        conn.close_after_flush = true;
        update_interest(conn);
        const std::uint64_t id = conn.id;
        flush_writes(conn);  // may destroy conn (write error, quiet close)
        return conns_.count(id) != 0;
      }

      conn.inpos += result.consumed;
      server_.stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      Frame& frame = result.frame;
      if (frame.version != kFrameVersion) {
        append_frame(conn.outbuf, FrameType::kError, frame.request_id,
                     core::error_response(
                         core::ErrorCode::kUnsupportedVersion,
                         "frame protocol version " +
                             std::to_string(frame.version) + " not supported (server "
                             "speaks " + std::to_string(kFrameVersion) + ")"));
        server_.stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (frame.type != FrameType::kRequest) {
        server_.stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_connection(conn);
        return false;
      }
      submit(conn, frame.request_id, std::move(frame.payload));
    }

    if (conn.inpos == conn.inbuf.size()) {
      conn.inbuf.clear();
      conn.inpos = 0;
    } else if (conn.inpos >= kCompactThreshold) {
      conn.inbuf.erase(0, conn.inpos);
      conn.inpos = 0;
    }
    const std::uint64_t id = conn.id;
    flush_writes(conn);  // may destroy conn (write error, quiet close)
    return conns_.count(id) != 0;
  }

  void submit(Connection& conn, std::uint32_t request_id, std::string body) {
    // L2 fast path: a cached response is framed straight from the shared
    // epoch-protected buffer on this event-loop thread — no response-string
    // copy, no inbox round trip, no dispatcher admission, no worker hop.
    // in_flight is never raised, so drain/quiet-close logic is untouched;
    // the frame flushes with everything else at the end of parse_frames.
    if (auto hit = server_.broker_.try_cached(body)) {
      append_frame(conn.outbuf, FrameType::kResponse, request_id, hit->body);
      server_.stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
      if (util::CacheMetrics* cm = server_.broker_.cache_metrics_hook()) {
        cm->inline_served.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    conn.in_flight++;
    const std::uint64_t conn_id = conn.id;
    server_.callbacks_outstanding_.fetch_add(1, std::memory_order_acq_rel);
    server_.broker_.submit_async(
        std::move(body),
        [this, conn_id, request_id](std::string response) {
          post_response(conn_id, request_id, std::move(response));
          server_.callbacks_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        },
        /*probe_cache=*/false);
  }

  void flush_writes(Connection& conn) {
    while (conn.outpos < conn.outbuf.size()) {
      // MSG_NOSIGNAL: a peer that resets mid-flush must surface as EPIPE
      // here, not as a process-killing SIGPIPE.
      const ssize_t n = ::send(conn.sock.fd(), conn.outbuf.data() + conn.outpos,
                               conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.outpos += static_cast<std::size_t>(n);
        server_.stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                           std::memory_order_relaxed);
        conn.last_activity = Clock::now();
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn);
      return;
    }
    if (conn.outpos == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.outpos = 0;
    } else if (conn.outpos >= kCompactThreshold) {
      conn.outbuf.erase(0, conn.outpos);
      conn.outpos = 0;
    }

    // Write-buffer backpressure (per connection, with hysteresis): a peer
    // that stops reading stops being read.
    const std::size_t pending = conn.outbuf.size() - conn.outpos;
    const bool want = conn.write_paused
                          ? pending > server_.config_.max_write_buffer / 2
                          : pending >= server_.config_.max_write_buffer;
    if (want != conn.write_paused) {
      conn.write_paused = want;
      if (want) server_.stats_.pauses.write_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    update_interest(conn);
    maybe_close_quiet(conn);
  }

  /// Closes a connection that has nothing left to do: output flushed, no
  /// request in flight, and a reason to go (peer EOF, protocol cutoff, or
  /// server drain).
  void maybe_close_quiet(Connection& conn) {
    if (conn.outbuf.size() != conn.outpos || conn.in_flight != 0) return;
    const bool draining = server_.draining_.load(std::memory_order_acquire);
    if (conn.close_after_flush || conn.peer_closed || draining) {
      close_connection(conn);
    }
  }

  void update_interest(Connection& conn) {
    std::uint32_t want = 0;
    if (conn.outpos < conn.outbuf.size()) want |= EPOLLOUT;
    if (!paused_ && !conn.write_paused && !conn.peer_closed &&
        !conn.close_after_flush) {
      want |= EPOLLIN;
    }
    if (want == conn.armed) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn.id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev) == 0) {
      conn.armed = want;
    }
  }

  void close_connection(Connection& conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
    server_.stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    server_.open_connections_.fetch_sub(1, std::memory_order_acq_rel);
    conns_.erase(conn.id);  // destroys conn; closes the fd
  }

  void sweep_idle() {
    if (server_.config_.idle_timeout.count() == 0) return;
    const Clock::time_point now = Clock::now();
    if (now < next_idle_sweep_) return;
    next_idle_sweep_ = now + std::min(server_.config_.idle_timeout / 2,
                                      std::chrono::milliseconds(100));
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection& conn = *it->second;
      ++it;
      if (conn.in_flight == 0 && conn.outbuf.size() == conn.outpos &&
          now - conn.last_activity > server_.config_.idle_timeout) {
        server_.stats_.idle_closes.fetch_add(1, std::memory_order_relaxed);
        close_connection(conn);
      }
    }
  }

  /// Drain bookkeeping; true once this shard is finished. Quiet
  /// connections close as their last response flushes (maybe_close_quiet);
  /// peers that keep talking are answered code="draining" by the
  /// dispatcher until the linger deadline cuts them off.
  bool sweep_drain() {
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection& conn = *it->second;
      ++it;
      maybe_close_quiet(conn);
    }
    const Clock::time_point deadline{Clock::duration{
        server_.drain_deadline_.load(std::memory_order_acquire)}};
    if (Clock::now() >= deadline) {
      for (auto it = conns_.begin(); it != conns_.end();) {
        Connection& conn = *it->second;
        ++it;
        close_connection(conn);
      }
    }
    return conns_.empty() && inbox_empty();
  }

  void close_all() {
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection& conn = *it->second;
      ++it;
      close_connection(conn);
    }
  }

  /// Drops every queued op without processing it: pending connections are
  /// closed, pending responses counted as dropped. Used once the loop has
  /// stopped serving.
  void discard_inbox() {
    std::vector<Op> batch;
    {
      std::lock_guard lock(mutex_);
      batch.swap(inbox_);
    }
    for (const Op& op : batch) {
      if (op.kind == Op::kNewConnection) {
        if (op.fd >= 0) ::close(op.fd);
      } else {
        server_.stats_.dropped_responses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  CatalogServer& server_;
  [[maybe_unused]] std::size_t index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::mutex mutex_;
  std::vector<Op> inbox_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  bool paused_ = false;            // loop-thread only
  Clock::time_point next_idle_sweep_{};  // loop-thread only
};

// ---------------------------------------------------------------------------
// CatalogServer
// ---------------------------------------------------------------------------

CatalogServer::CatalogServer(core::RequestBroker& broker, ServerConfig config)
    : broker_(broker), config_(config) {
  if (config_.event_threads == 0) config_.event_threads = 1;
  if (config_.pause_high_watermark != 0) {
    pause_high_ = config_.pause_high_watermark;
  } else {
    // Derived watermark sits below the admission bound: each event loop can
    // slip one submission past its depth check before pausing, so without
    // headroom concurrent loops could hit the bound and bounce requests as
    // `overloaded` — exactly what read-pausing exists to prevent.
    const std::size_t headroom =
        std::min(broker_.max_queue() / 2, 2 * config_.event_threads);
    pause_high_ = broker_.max_queue() - headroom;
  }
  if (pause_high_ == 0) pause_high_ = 1;
  pause_low_ = config_.pause_low_watermark != 0 ? config_.pause_low_watermark
                                                : pause_high_ / 2;
  if (pause_low_ >= pause_high_) pause_low_ = pause_high_ / 2;
}

CatalogServer::~CatalogServer() { shutdown(); }

void CatalogServer::start() {
  if (started_.exchange(true)) return;
  listen_ = listen_tcp(config_.port);
  port_ = local_port(listen_.fd());
  set_nonblocking(listen_.fd());
  for (std::size_t i = 0; i < config_.event_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(*this, i));
  }
  accepting_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->start();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void CatalogServer::accept_loop() {
  std::size_t next_loop = 0;
  while (accepting_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    for (;;) {
      const int fd = ::accept4(listen_.fd(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or transient (EMFILE/ECONNABORTED): retry on next poll
      try {
        set_nodelay(fd);
      } catch (const SocketError&) {
        // Peer vanished between accept and setsockopt; keep the fd anyway,
        // the first read will report it.
      }
      stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      loops_[next_loop]->post_connection(fd);
      next_loop = (next_loop + 1) % loops_.size();
    }
  }
  listen_.reset();
}

void CatalogServer::join_threads() {
  if (joined_.exchange(true)) return;
  accepting_.store(false, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) loop->wake();
  for (auto& loop : loops_) loop->join();
  // No loop thread runs anymore, but dispatcher workers may still hold
  // callbacks that post into loop inboxes; those posts are harmless on the
  // live objects — just wait them out before the loops can be destroyed.
  while (callbacks_outstanding_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void CatalogServer::drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  // Deadline first, flag second: the loops read the deadline only after an
  // acquire load of draining_, so this release store is what makes it
  // visible to them. (Concurrent drain() calls may both store; drain is
  // idempotent and the later deadline differs by scheduling noise only.)
  drain_deadline_.store(
      (Clock::now() + config_.drain_linger).time_since_epoch().count(),
      std::memory_order_release);
  if (!draining_.exchange(true)) {
    // Queued and future frames bounce off the broker's admission gate
    // as code="draining" while the loops flush in-flight responses.
    broker_.begin_drain();
  }
  for (auto& loop : loops_) loop->wake();
  join_threads();
  broker_.drain();
}

void CatalogServer::shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->wake();
  join_threads();
}

}  // namespace hxrc::net
