// The framed wire protocol of the catalog server.
//
// The in-process service exchanges serialized XML strings; on a TCP stream
// those need boundaries, correlation, and a version gate. A frame is a
// fixed 12-byte header followed by the XML body:
//
//   offset  size  field
//   0       1     magic 'H'
//   1       1     magic 'X'
//   2       1     protocol major version (kFrameVersion = 1)
//   3       1     frame type (0 request, 1 response, 2 frame-level error)
//   4       4     request id, little-endian (echoed on the response)
//   8       4     payload length, little-endian
//   12      N     payload: the <catalogRequest>/<catalogResponse> bytes
//
// The header layout is fixed for ALL majors by contract — a server that
// does not speak a frame's major can still decode its boundaries and
// answer it with a kError frame carrying code="unsupported_version",
// instead of desynchronizing the stream.
//
// Request ids are chosen by the client and echoed verbatim; a client may
// pipeline many requests and match responses by id, because the server
// returns responses in COMPLETION order, not submission order (the
// dispatcher's workers finish independently). kError frames answer frames
// that never reached the dispatcher (foreign major, oversized payload);
// their body is a regular <catalogResponse status="error"> so clients have
// one error vocabulary. A frame-level error that cannot even be attributed
// to a request (garbled magic) has no id to echo — the server closes the
// connection instead, since the stream is unrecoverable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hxrc::net {

inline constexpr char kFrameMagic0 = 'H';
inline constexpr char kFrameMagic1 = 'X';
/// Wire-framing major version; mirrors core::kProtocolMajor.
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameType : std::uint8_t {
  kRequest = 0,
  kResponse = 1,
  /// The frame never reached the service (bad version, oversized payload);
  /// the payload is still a <catalogResponse status="error">.
  kError = 2,
  /// Internal replication traffic (src/fed/ship_wire.hpp): WAL-shipping
  /// hello/bootstrap/chunk/ack messages between a shard primary and its
  /// read replica. Never valid on the public request port — the server
  /// answers it like any non-request frame type.
  kWalShip = 3,
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint8_t version = kFrameVersion;
  std::uint32_t request_id = 0;
  std::string payload;
};

/// Appends one encoded frame (current version) to `out`.
void append_frame(std::string& out, FrameType type, std::uint32_t request_id,
                  std::string_view payload);

enum class DecodeStatus {
  kNeedMore,  // buffer holds a prefix of a frame; read more bytes
  kFrame,     // one complete frame decoded
  kBadMagic,  // stream is not speaking this protocol; unrecoverable
  kTooLarge,  // header valid but payload exceeds the caller's limit
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;               // valid when status == kFrame
  std::uint32_t request_id = 0;  // valid for kFrame and kTooLarge (header read)
  std::size_t consumed = 0;  // bytes to drop from the buffer (kFrame only)
};

/// Decodes the first frame of `buffer`. Unknown version bytes and unknown
/// frame types decode successfully (the header layout is version-stable);
/// the caller decides how to answer them. `max_payload` bounds memory a
/// peer can make us commit to one frame.
DecodeResult decode_frame(std::string_view buffer, std::size_t max_payload);

}  // namespace hxrc::net
