// BlockingClient: a simple synchronous peer for CatalogServer.
//
// This is the test/tooling side of the wire protocol — one blocking socket,
// frames written whole and read whole. The closed-loop load generator uses
// its own non-blocking machinery (bench/bench_net.cpp); tests and shells
// want the straightforward thing: call() = one request, one response.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace hxrc::net {

class BlockingClient {
 public:
  /// Largest response payload accepted by default. A peer announcing a
  /// bigger length in its header gets a clean SocketError instead of an
  /// unbounded allocation (or, worse, an eternal read loop waiting for
  /// petabytes that never come).
  static constexpr std::size_t kDefaultMaxPayload = std::size_t{256} << 20;

  /// Connects immediately; throws SocketError on failure.
  BlockingClient(const std::string& host, std::uint16_t port);

  BlockingClient(BlockingClient&&) = default;
  BlockingClient& operator=(BlockingClient&&) = default;

  /// Frames `body` as a kRequest and writes it fully. Returns the request
  /// id assigned (monotone per client).
  std::uint32_t send_request(std::string_view body);

  /// Like send_request but with an explicit frame type/version — for tests
  /// poking at protocol errors.
  void send_frame(FrameType type, std::uint32_t request_id, std::string_view body);

  /// Writes raw bytes verbatim (malformed-input tests).
  void send_raw(std::string_view bytes);

  /// Blocks until one complete frame arrives. Throws SocketError on EOF or
  /// error mid-frame.
  Frame recv_frame();

  /// send_request + recv_frame; throws SocketError when the echoed request
  /// id does not match (callers that pipeline must not use call()).
  std::string call(std::string_view body);

  /// Half-closes the write side (drain tests: server sees EOF, client can
  /// still read pending responses).
  void shutdown_write();

  /// Caps the response payload this client will accept (see
  /// kDefaultMaxPayload). A frame header announcing more throws SocketError
  /// from recv_frame without consuming the stream.
  void set_max_payload(std::size_t bytes) noexcept { max_payload_ = bytes; }

  /// Bounds every blocking read/write on this connection (net::set_io_timeout);
  /// an expired wait surfaces as SocketError. 0 = wait forever.
  void set_io_timeout(std::uint32_t millis) { net::set_io_timeout(sock_.fd(), millis); }

  int fd() const noexcept { return sock_.fd(); }

 private:
  Socket sock_;
  std::string inbuf_;
  std::uint32_t next_id_ = 1;
  std::size_t max_payload_ = kDefaultMaxPayload;
};

}  // namespace hxrc::net
