// CatalogServer: the TCP front end over a core::RequestBroker.
//
// The engine stays untouched: the server's only job is to move framed
// <catalogRequest> bodies from sockets into RequestBroker::submit_async
// and framed <catalogResponse> bodies back out. The broker is usually the
// single-node ServiceDispatcher; a fed::FederationRouter plugs in through
// the same seam to serve the identical protocol over sharded backends. The shape is one acceptor
// thread plus N event-loop threads, each owning an epoll set of
// connections (a connection is touched only by its owning loop thread;
// cross-thread traffic — new connections from the acceptor, completed
// responses from dispatcher workers — arrives through a mutexed inbox
// drained via an eventfd wake).
//
// Per-connection state machine disciplines:
//
//  * partial reads/writes — frames are reassembled from whatever read()
//    returns; unflushed response bytes wait for EPOLLOUT;
//  * pipelining — a client may have many requests in flight; responses are
//    delivered in completion order and matched by echoed request id;
//  * bounded write buffering — when a connection's unflushed output
//    exceeds max_write_buffer, the server stops READING from it until the
//    peer drains its socket (a slow reader throttles itself, never our
//    memory);
//  * admission backpressure — when the dispatcher queue reaches the high
//    watermark the loop stops reading from ALL its sockets and stops
//    submitting parsed frames, resuming at the low watermark. Saturation
//    shows up to clients as TCP backpressure (their sends stall), not as a
//    flood of code="overloaded" responses;
//  * idle timeouts — quiet connections are closed after idle_timeout;
//  * graceful drain — drain() stops accepting, flips the dispatcher's
//    admission gate (queued/new frames answer code="draining"), lets
//    in-flight requests complete and flush, then reuses
//    RequestBroker::drain() for worker + epoch quiescence. Connections
//    that never go quiet are cut off after drain_linger.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/broker.hpp"
#include "net/socket.hpp"

namespace hxrc::net {

struct ServerConfig {
  /// 0 = kernel-chosen ephemeral port; read the outcome via port().
  std::uint16_t port = 0;
  /// Event-loop threads (connections are sharded round-robin across them).
  std::size_t event_threads = 2;
  /// Largest request payload a frame may carry.
  std::size_t max_frame_payload = 16u << 20;
  /// Per-connection unflushed-output cap; beyond it reads from that
  /// connection pause until the peer drains.
  std::size_t max_write_buffer = 4u << 20;
  /// Close connections idle longer than this; zero = never.
  std::chrono::milliseconds idle_timeout{0};
  /// Dispatcher-queue watermarks for read backpressure. Zero = derived
  /// from the dispatcher: high = max_queue, low = max_queue / 2.
  std::size_t pause_high_watermark = 0;
  std::size_t pause_low_watermark = 0;
  /// How long drain() waits for connections to go quiet before cutting
  /// them off.
  std::chrono::milliseconds drain_linger{2000};
};

/// Monotone counters, written by the server threads with relaxed atomics
/// and readable at any time.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  /// Streams cut off for unrecoverable framing (bad magic, non-request
  /// frame type, oversized payload).
  std::atomic<std::uint64_t> protocol_errors{0};
  /// Pause transitions (dispatcher-backpressure read pauses per loop,
  /// per-connection write-buffer pauses) — a util struct so the catalog's
  /// stats response can report them (MetadataCatalog::set_server_pauses).
  util::ServerPauses pauses;
  std::atomic<std::uint64_t> idle_closes{0};
  /// Responses whose connection was gone by completion time.
  std::atomic<std::uint64_t> dropped_responses{0};
};

class CatalogServer {
 public:
  CatalogServer(core::RequestBroker& broker, ServerConfig config = {});
  ~CatalogServer();

  CatalogServer(const CatalogServer&) = delete;
  CatalogServer& operator=(const CatalogServer&) = delete;

  /// Binds + listens and spawns the acceptor and event threads. Throws
  /// SocketError when the port is unavailable.
  void start();

  /// The bound port (valid after start(); resolves port=0 requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, answer new frames with
  /// code="draining", complete + flush in-flight requests, then quiesce
  /// the broker (RequestBroker::drain()). Blocks until done.
  /// Idempotent.
  void drain();

  /// Immediate stop: closes every connection without flushing. Still waits
  /// for outstanding dispatcher callbacks so no worker touches a dead
  /// server. Idempotent; the destructor calls it.
  void shutdown();

  const ServerStats& stats() const noexcept { return stats_; }
  std::size_t open_connections() const noexcept {
    return open_connections_.load(std::memory_order_acquire);
  }
  bool draining() const noexcept { return draining_.load(std::memory_order_acquire); }

 private:
  class EventLoop;
  friend class EventLoop;

  void accept_loop();
  void join_threads();

  core::RequestBroker& broker_;
  ServerConfig config_;
  ServerStats stats_;
  Socket listen_;
  std::uint16_t port_ = 0;
  std::size_t pause_high_ = 0;
  std::size_t pause_low_ = 0;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};
  /// Drain cutoff as steady_clock ticks since epoch. Published (release)
  /// before draining_ flips so an event loop that observes draining_ never
  /// reads a zero deadline and force-closes everything immediately.
  std::atomic<std::chrono::steady_clock::duration::rep> drain_deadline_{0};
  std::atomic<std::uint64_t> next_conn_{0};
  std::atomic<std::size_t> open_connections_{0};
  /// Dispatcher callbacks referencing this server that have not returned
  /// yet; drain()/shutdown() wait for zero before the loops may die.
  std::atomic<std::size_t> callbacks_outstanding_{0};
};

}  // namespace hxrc::net
