#include "net/frame.hpp"

namespace hxrc::net {

namespace {

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t get_u32le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3])) << 24;
}

}  // namespace

void append_frame(std::string& out, FrameType type, std::uint32_t request_id,
                  std::string_view payload) {
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  out.push_back(kFrameMagic0);
  out.push_back(kFrameMagic1);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  put_u32le(out, request_id);
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

DecodeResult decode_frame(std::string_view buffer, std::size_t max_payload) {
  DecodeResult result;
  if (buffer.size() < 2) {
    // Not even the magic yet — but reject a wrong first byte immediately so
    // a non-protocol peer is cut off before it streams a whole "frame".
    if (!buffer.empty() && buffer[0] != kFrameMagic0) {
      result.status = DecodeStatus::kBadMagic;
    }
    return result;
  }
  if (buffer[0] != kFrameMagic0 || buffer[1] != kFrameMagic1) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes) return result;

  const std::uint32_t request_id = get_u32le(buffer.data() + 4);
  const std::uint32_t length = get_u32le(buffer.data() + 8);
  result.request_id = request_id;
  if (length > max_payload) {
    result.status = DecodeStatus::kTooLarge;
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes + length) return result;

  result.status = DecodeStatus::kFrame;
  result.frame.version = static_cast<std::uint8_t>(buffer[2]);
  result.frame.type = static_cast<FrameType>(static_cast<std::uint8_t>(buffer[3]));
  result.frame.request_id = request_id;
  result.frame.payload.assign(buffer.substr(kFrameHeaderBytes, length));
  result.consumed = kFrameHeaderBytes + length;
  return result;
}

}  // namespace hxrc::net
