#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hxrc::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen");
  return sock;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  if (rc != 0) {
    throw SocketError("getaddrinfo(" + host + "): " + ::gai_strerror(rc));
  }
  Socket sock;
  int last_errno = 0;
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    Socket candidate(::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC, 0));
    if (!candidate.valid()) {
      last_errno = errno;
      continue;
    }
    if (::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      sock = std::move(candidate);
      break;
    }
    last_errno = errno;
  }
  ::freeaddrinfo(found);
  if (!sock.valid()) {
    errno = last_errno;
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return sock;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void set_io_timeout(int fd, std::uint32_t millis) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>(millis % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

}  // namespace hxrc::net
