#include "xml/parser.hpp"

#include <cctype>
#include <vector>

#include "util/string_util.hpp"

namespace hxrc::xml {

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' || c == '-' ||
         c == '.';
}

// One parser, two backing modes. With `arena == nullptr` (owned mode) every
// name and value is copied into per-node storage, exactly as before. With an
// arena, `input_` is the arena's stable copy of the source, so names and
// escape-free text are returned as views into it; only unescaped text is
// materialized (into the arena).
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options, DomArena* arena)
      : input_(input), options_(options), arena_(arena) {}

  Document parse_document() {
    skip_prolog();
    Document doc(parse_element());
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return doc;
  }

  NodePtr parse_fragment_root() {
    skip_misc();
    NodePtr root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after fragment");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError(message, line, column);
  }

  bool at_end() const noexcept { return pos_ >= input_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return input_[pos_];
  }

  char peek_at(std::size_t offset) const noexcept {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  char advance() {
    char c = peek();
    ++pos_;
    return c;
  }

  bool consume(std::string_view token) noexcept {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void expect(std::string_view token) {
    if (!consume(token)) fail("expected '" + std::string(token) + "'");
  }

  void skip_space() noexcept {
    while (!at_end() && std::isspace(static_cast<unsigned char>(input_[pos_]))) ++pos_;
  }

  /// Skips whitespace, comments, and processing instructions.
  void skip_misc() {
    for (;;) {
      skip_space();
      if (consume("<!--")) {
        const auto end = input_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (pos_ + 1 < input_.size() && input_[pos_] == '<' && input_[pos_ + 1] == '?') {
        const auto end = input_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated processing instruction");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_misc();
    if (consume("<!DOCTYPE")) {
      // Skip to the matching '>' (internal subsets are not supported).
      int depth = 1;
      while (depth > 0) {
        char c = advance();
        if (c == '<') ++depth;
        if (c == '>') --depth;
      }
      skip_misc();
    }
  }

  /// Returns the name as a view into input_ (stable in arena mode).
  std::string_view parse_name() {
    if (at_end() || !is_name_start(peek())) fail("expected a name");
    const std::size_t start = pos_;
    ++pos_;
    while (!at_end() && is_name_char(input_[pos_])) ++pos_;
    return input_.substr(start, pos_ - start);
  }

  /// Decodes entity and character references in raw character data.
  std::string decode_text(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity reference");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        long code = 0;
        try {
          code = (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                     ? std::stol(std::string(entity.substr(2)), nullptr, 16)
                     : std::stol(std::string(entity.substr(1)), nullptr, 10);
        } catch (const std::exception&) {
          fail("bad character reference");
        }
        append_utf8(out, static_cast<std::uint32_t>(code));
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  /// Parses a quoted value. The returned view is stable in arena mode
  /// (source view or arena copy); in owned mode it may alias `decoded` and
  /// must be copied before the next call.
  std::string_view parse_attribute_value(std::string& decoded) {
    const char quote = advance();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    const std::size_t start = pos_;
    while (peek() != quote) {
      if (peek() == '<') fail("'<' not allowed in attribute value");
      ++pos_;
    }
    const std::string_view raw = input_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    if (raw.find('&') == std::string_view::npos) return raw;
    decoded = decode_text(raw);
    return arena_ != nullptr ? arena_->store(decoded) : std::string_view(decoded);
  }

  NodePtr parse_element() {
    expect("<");
    const std::string_view name = parse_name();
    NodePtr node = arena_ != nullptr ? NodePtr(arena_->make_element(name))
                                     : Node::element(std::string(name));
    // Attributes.
    std::string decoded;
    for (;;) {
      skip_space();
      if (consume("/>")) return node;
      if (consume(">")) break;
      const std::string_view attr_name = parse_name();
      skip_space();
      expect("=");
      skip_space();
      const std::string_view value = parse_attribute_value(decoded);
      if (arena_ != nullptr) {
        DomArena::add_pooled_attribute(*node, attr_name, value);
      } else {
        node->add_attribute(std::string(attr_name), std::string(value));
      }
    }
    // Content.
    parse_content(*node);
    // parse_content consumed '</'; close tag name follows.
    const std::string_view close_name = parse_name();
    if (close_name != node->name()) {
      fail("mismatched close tag '</" + std::string(close_name) + ">' for <" +
           std::string(node->name()) + ">");
    }
    skip_space();
    expect(">");
    return node;
  }

  /// Appends a character-data node holding `raw` after entity decoding.
  /// `stable` marks raw as a view into input_ (reusable directly in arena
  /// mode); otherwise it aliases caller scratch.
  void append_text_node(Node& parent, std::string_view raw, bool stable) {
    std::string decoded;
    const bool needs_decode = raw.find('&') != std::string_view::npos;
    if (needs_decode) decoded = decode_text(raw);
    if (arena_ != nullptr) {
      std::string_view text;
      if (needs_decode) {
        text = arena_->store(decoded);
      } else {
        text = stable ? raw : arena_->store(raw);
      }
      parent.add_child(NodePtr(arena_->make_text(text)));
    } else {
      parent.add_text(needs_decode ? std::move(decoded) : std::string(raw));
    }
  }

  void parse_content(Node& parent) {
    // Raw text accumulates as views over input_; a comment or PI in the
    // middle of character data merges the surrounding runs into one node, so
    // more than one segment is possible (but rare — keep the first inline).
    std::string_view first_segment;
    std::vector<std::string_view> extra_segments;
    std::string concat;

    auto add_segment = [&](std::string_view s) {
      if (s.empty()) return;
      if (first_segment.empty() && extra_segments.empty()) {
        first_segment = s;
      } else {
        extra_segments.push_back(s);
      }
    };

    auto flush_text = [&] {
      if (first_segment.empty() && extra_segments.empty()) return;
      std::string_view raw;
      bool stable = true;
      if (extra_segments.empty()) {
        raw = first_segment;
      } else {
        concat.assign(first_segment);
        for (const std::string_view s : extra_segments) concat += s;
        raw = concat;
        stable = false;
      }
      // Whitespace-only runs are dropped by default (checked on the raw
      // bytes, as escapes never encode to nothing).
      if (options_.keep_whitespace_text || !util::is_blank(raw)) {
        append_text_node(parent, raw, stable);
      }
      first_segment = {};
      extra_segments.clear();
    };

    for (;;) {
      if (at_end()) fail("unterminated element <" + std::string(parent.name()) + ">");
      if (peek() == '<') {
        if (consume("</")) {
          flush_text();
          return;
        }
        if (consume("<!--")) {
          const auto end = input_.find("-->", pos_);
          if (end == std::string_view::npos) fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (consume("<![CDATA[")) {
          const auto end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) fail("unterminated CDATA section");
          // CDATA content is literal: bypass entity decoding and the
          // whitespace-only drop, as its own node.
          flush_text();
          const std::string_view literal = input_.substr(pos_, end - pos_);
          if (arena_ != nullptr) {
            parent.add_child(NodePtr(arena_->make_text(literal)));
          } else {
            parent.add_text(std::string(literal));
          }
          pos_ = end + 3;
          continue;
        }
        if (peek_at(1) == '?') {
          const auto end = input_.find("?>", pos_);
          if (end == std::string_view::npos) fail("unterminated processing instruction");
          pos_ = end + 2;
          continue;
        }
        flush_text();
        parent.add_child(parse_element());
      } else {
        const std::size_t start = pos_;
        while (!at_end() && input_[pos_] != '<') ++pos_;
        add_segment(input_.substr(start, pos_ - start));
      }
    }
  }

  std::string_view input_;
  ParseOptions options_;
  DomArena* arena_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options, nullptr);
  return parser.parse_document();
}

Document parse_arena(std::string_view input, const ParseOptions& options) {
  auto arena = std::make_shared<DomArena>();
  const std::string_view stable = arena->store_source(input);
  Parser parser(stable, options, arena.get());
  Document doc = parser.parse_document();
  doc.storage = std::move(arena);
  return doc;
}

NodePtr parse_fragment(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options, nullptr);
  return parser.parse_fragment_root();
}

}  // namespace hxrc::xml
