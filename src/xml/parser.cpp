#include "xml/parser.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace hxrc::xml {

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error(message + " at line " + std::to_string(line) + ", column " +
                         std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' || c == '-' ||
         c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Document parse_document() {
    skip_prolog();
    Document doc(parse_element());
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return doc;
  }

  NodePtr parse_fragment_root() {
    skip_misc();
    NodePtr root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after fragment");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError(message, line, column);
  }

  bool at_end() const noexcept { return pos_ >= input_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return input_[pos_];
  }

  char peek_at(std::size_t offset) const noexcept {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  char advance() {
    char c = peek();
    ++pos_;
    return c;
  }

  bool consume(std::string_view token) noexcept {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void expect(std::string_view token) {
    if (!consume(token)) fail("expected '" + std::string(token) + "'");
  }

  void skip_space() noexcept {
    while (!at_end() && std::isspace(static_cast<unsigned char>(input_[pos_]))) ++pos_;
  }

  /// Skips whitespace, comments, and processing instructions.
  void skip_misc() {
    for (;;) {
      skip_space();
      if (consume("<!--")) {
        const auto end = input_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (pos_ + 1 < input_.size() && input_[pos_] == '<' && input_[pos_ + 1] == '?') {
        const auto end = input_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated processing instruction");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_misc();
    if (consume("<!DOCTYPE")) {
      // Skip to the matching '>' (internal subsets are not supported).
      int depth = 1;
      while (depth > 0) {
        char c = advance();
        if (c == '<') ++depth;
        if (c == '>') --depth;
      }
      skip_misc();
    }
  }

  std::string parse_name() {
    if (at_end() || !is_name_start(peek())) fail("expected a name");
    const std::size_t start = pos_;
    ++pos_;
    while (!at_end() && is_name_char(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes entity and character references in raw character data.
  std::string decode_text(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity reference");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        long code = 0;
        try {
          code = (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X'))
                     ? std::stol(std::string(entity.substr(2)), nullptr, 16)
                     : std::stol(std::string(entity.substr(1)), nullptr, 10);
        } catch (const std::exception&) {
          fail("bad character reference");
        }
        append_utf8(out, static_cast<std::uint32_t>(code));
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_attribute_value() {
    const char quote = advance();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    const std::size_t start = pos_;
    while (peek() != quote) {
      if (peek() == '<') fail("'<' not allowed in attribute value");
      ++pos_;
    }
    std::string value = decode_text(input_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  NodePtr parse_element() {
    expect("<");
    NodePtr node = Node::element(parse_name());
    // Attributes.
    for (;;) {
      skip_space();
      if (consume("/>")) return node;
      if (consume(">")) break;
      std::string attr_name = parse_name();
      skip_space();
      expect("=");
      skip_space();
      node->add_attribute(std::move(attr_name), parse_attribute_value());
    }
    // Content.
    parse_content(*node);
    // parse_content consumed '</'; close tag name follows.
    const std::string close_name = parse_name();
    if (close_name != node->name()) {
      fail("mismatched close tag '</" + close_name + ">' for <" + node->name() + ">");
    }
    skip_space();
    expect(">");
    return node;
  }

  void parse_content(Node& parent) {
    std::string pending_text;
    auto flush_text = [&] {
      if (pending_text.empty()) return;
      if (options_.keep_whitespace_text || !util::is_blank(pending_text)) {
        parent.add_text(decode_text(pending_text));
      }
      pending_text.clear();
    };

    for (;;) {
      if (at_end()) fail("unterminated element <" + parent.name() + ">");
      if (peek() == '<') {
        if (consume("</")) {
          flush_text();
          return;
        }
        if (consume("<!--")) {
          const auto end = input_.find("-->", pos_);
          if (end == std::string_view::npos) fail("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        if (consume("<![CDATA[")) {
          const auto end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) fail("unterminated CDATA section");
          // CDATA content is literal: bypass entity decoding.
          flush_text();
          parent.add_text(std::string(input_.substr(pos_, end - pos_)));
          pos_ = end + 3;
          continue;
        }
        if (peek_at(1) == '?') {
          const auto end = input_.find("?>", pos_);
          if (end == std::string_view::npos) fail("unterminated processing instruction");
          pos_ = end + 2;
          continue;
        }
        flush_text();
        parent.add_child(parse_element());
      } else {
        pending_text.push_back(advance());
      }
    }
  }

  std::string_view input_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  return parser.parse_document();
}

NodePtr parse_fragment(std::string_view input, const ParseOptions& options) {
  Parser parser(input, options);
  return parser.parse_fragment_root();
}

}  // namespace hxrc::xml
