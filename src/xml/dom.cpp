#include "xml/dom.hpp"

#include "util/string_util.hpp"

namespace hxrc::xml {

void NodeDeleter::operator()(Node* node) const noexcept {
  if (node != nullptr && !node->pooled()) delete node;
}

Node::~Node() {
  // Owned children are raw pointers (so both modes share one layout); pooled
  // children belong to their DomArena and are left alone.
  for (Node* child : children_) {
    if (!child->pooled_) delete child;
  }
}

NodePtr Node::element(std::string name) {
  auto node = NodePtr(new Node(Kind::kElement));
  node->name_ = node->own(std::move(name));
  return node;
}

NodePtr Node::text(std::string value) {
  auto node = NodePtr(new Node(Kind::kText));
  node->value_ = node->own(std::move(value));
  return node;
}

void Node::add_attribute(std::string name, std::string value) {
  attributes_.push_back(Attribute{own(std::move(name)), own(std::move(value))});
}

const std::string_view* Node::attribute(std::string_view name) const noexcept {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node* Node::add_child(NodePtr child) {
  child->parent_ = this;
  children_.push_back(child.release());
  return children_.back();
}

Node* Node::add_element(std::string name) {
  return add_child(Node::element(std::move(name)));
}

Node* Node::add_element(std::string name, std::string text_content) {
  Node* el = add_element(std::move(name));
  el->add_text(std::move(text_content));
  return el;
}

Node* Node::add_text(std::string text_content) {
  return add_child(Node::text(std::move(text_content)));
}

const Node* Node::first_child(std::string_view tag) const noexcept {
  for (const Node* child : children_) {
    if (child->is_element() && child->name_ == tag) return child;
  }
  return nullptr;
}

Node* Node::first_child(std::string_view tag) noexcept {
  return const_cast<Node*>(static_cast<const Node*>(this)->first_child(tag));
}

std::vector<const Node*> Node::children_named(std::string_view tag) const {
  std::vector<const Node*> out;
  for (const Node* child : children_) {
    if (child->is_element() && child->name_ == tag) out.push_back(child);
  }
  return out;
}

std::vector<const Node*> Node::child_elements() const {
  std::vector<const Node*> out;
  out.reserve(children_.size());
  for (const Node* child : children_) {
    if (child->is_element()) out.push_back(child);
  }
  return out;
}

std::string Node::text_content() const {
  std::string scratch;
  return std::string(text_view(scratch));
}

std::string_view Node::text_view(std::string& scratch) const {
  const Node* only_text = nullptr;
  std::size_t text_children = 0;
  for (const Node* child : children_) {
    if (child->is_text()) {
      only_text = child;
      ++text_children;
    }
  }
  if (text_children == 0) return {};
  if (text_children == 1) return util::trim(only_text->value_);
  scratch.clear();
  for (const Node* child : children_) {
    if (child->is_text()) scratch += child->value_;
  }
  return util::trim(scratch);
}

std::string Node::child_text(std::string_view tag) const {
  const Node* child = first_child(tag);
  return child ? child->text_content() : std::string{};
}

std::string_view Node::child_text_view(std::string_view tag, std::string& scratch) const {
  const Node* child = first_child(tag);
  return child ? child->text_view(scratch) : std::string_view{};
}

bool Node::is_leaf_element() const noexcept {
  if (!is_element()) return false;
  for (const Node* child : children_) {
    if (child->is_element()) return false;
  }
  return true;
}

NodePtr Node::clone() const {
  NodePtr copy(new Node(kind_));
  if (!name_.empty()) copy->name_ = copy->own(std::string(name_));
  if (!value_.empty()) copy->value_ = copy->own(std::string(value_));
  copy->attributes_.reserve(attributes_.size());
  for (const auto& attr : attributes_) {
    copy->add_attribute(std::string(attr.name), std::string(attr.value));
  }
  copy->children_.reserve(children_.size());
  for (const Node* child : children_) {
    copy->add_child(child->clone());
  }
  return copy;
}

std::size_t Node::subtree_element_count() const noexcept {
  std::size_t count = is_element() ? 1 : 0;
  for (const Node* child : children_) {
    count += child->subtree_element_count();
  }
  return count;
}

}  // namespace hxrc::xml
