#include "xml/dom.hpp"

#include "util/string_util.hpp"

namespace hxrc::xml {

NodePtr Node::element(std::string name) {
  auto node = NodePtr(new Node(Kind::kElement));
  node->name_ = std::move(name);
  return node;
}

NodePtr Node::text(std::string value) {
  auto node = NodePtr(new Node(Kind::kText));
  node->value_ = std::move(value);
  return node;
}

void Node::add_attribute(std::string name, std::string value) {
  attributes_.push_back(Attribute{std::move(name), std::move(value)});
}

const std::string* Node::attribute(std::string_view name) const noexcept {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Node* Node::add_child(NodePtr child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::add_element(std::string name) {
  return add_child(Node::element(std::move(name)));
}

Node* Node::add_element(std::string name, std::string text_content) {
  Node* el = add_element(std::move(name));
  el->add_text(std::move(text_content));
  return el;
}

Node* Node::add_text(std::string text_content) {
  return add_child(Node::text(std::move(text_content)));
}

const Node* Node::first_child(std::string_view tag) const noexcept {
  for (const auto& child : children_) {
    if (child->is_element() && child->name_ == tag) return child.get();
  }
  return nullptr;
}

Node* Node::first_child(std::string_view tag) noexcept {
  return const_cast<Node*>(static_cast<const Node*>(this)->first_child(tag));
}

std::vector<const Node*> Node::children_named(std::string_view tag) const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (child->is_element() && child->name_ == tag) out.push_back(child.get());
  }
  return out;
}

std::vector<const Node*> Node::child_elements() const {
  std::vector<const Node*> out;
  out.reserve(children_.size());
  for (const auto& child : children_) {
    if (child->is_element()) out.push_back(child.get());
  }
  return out;
}

std::string Node::text_content() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) out += child->value_;
  }
  return std::string(util::trim(out));
}

std::string Node::child_text(std::string_view tag) const {
  const Node* child = first_child(tag);
  return child ? child->text_content() : std::string{};
}

bool Node::is_leaf_element() const noexcept {
  if (!is_element()) return false;
  for (const auto& child : children_) {
    if (child->is_element()) return false;
  }
  return true;
}

NodePtr Node::clone() const {
  NodePtr copy(new Node(kind_));
  copy->name_ = name_;
  copy->value_ = value_;
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->add_child(child->clone());
  }
  return copy;
}

std::size_t Node::subtree_element_count() const noexcept {
  std::size_t count = is_element() ? 1 : 0;
  for (const auto& child : children_) {
    count += child->subtree_element_count();
  }
  return count;
}

}  // namespace hxrc::xml
