// Recursive-descent XML parser.
//
// Supports the subset of XML 1.0 a grid metadata catalog exchanges: elements,
// attributes (single or double quoted), character data, CDATA sections,
// comments, processing instructions, the XML declaration, and the five
// predefined entities plus numeric character references. DTDs and namespaces
// are out of scope (the LEAD schema uses none).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace hxrc::xml {

/// Thrown on malformed input; carries 1-based line/column of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column);

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

struct ParseOptions {
  /// When false (default), text nodes that are entirely whitespace are
  /// dropped — metadata documents are data-centric, not document-centric.
  bool keep_whitespace_text = false;
};

/// Parses a complete document; throws ParseError on malformed input.
Document parse(std::string_view input, const ParseOptions& options = {});

/// Zero-copy variant: copies the input once into a DomArena the returned
/// Document shares ownership of, pool-allocates the nodes there, and leaves
/// names and escape-free text as views into that copy (escaped text is
/// unescaped into the arena). Canonically equal to parse() on any input.
Document parse_arena(std::string_view input, const ParseOptions& options = {});

/// Parses a single element fragment (no declaration required).
NodePtr parse_fragment(std::string_view input, const ParseOptions& options = {});

}  // namespace hxrc::xml
