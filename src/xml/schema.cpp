#include "xml/schema.hpp"

#include "util/string_util.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace hxrc::xml {

std::string_view to_string(LeafType type) noexcept {
  switch (type) {
    case LeafType::kNone: return "none";
    case LeafType::kString: return "string";
    case LeafType::kInt: return "int";
    case LeafType::kDouble: return "double";
    case LeafType::kDate: return "date";
  }
  return "none";
}

LeafType leaf_type_from_string(std::string_view s) {
  if (s == "none") return LeafType::kNone;
  if (s == "string") return LeafType::kString;
  if (s == "int") return LeafType::kInt;
  if (s == "double") return LeafType::kDouble;
  if (s == "date") return LeafType::kDate;
  throw SchemaError("unknown leaf type '" + std::string(s) + "'");
}

SchemaNode& SchemaNode::add_child(std::string name) {
  if (child(name) != nullptr) {
    throw SchemaError("duplicate child declaration '" + name + "' under '" + name_ + "'");
  }
  auto node = std::make_unique<SchemaNode>(std::move(name));
  node->parent_ = this;
  children_.push_back(std::move(node));
  return *children_.back();
}

const SchemaNode* SchemaNode::child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::size_t SchemaNode::depth() const noexcept {
  std::size_t d = 0;
  for (const SchemaNode* p = parent_; p != nullptr; p = p->parent_) ++d;
  return d;
}

const SchemaNode* Schema::find(std::string_view path) const noexcept {
  const SchemaNode* node = root_.get();
  if (path.empty()) return node;
  for (const auto segment : util::split(path, '/')) {
    node = node->child(segment);
    if (node == nullptr) return nullptr;
  }
  return node;
}

namespace {

std::size_t count_nodes(const SchemaNode& node) {
  std::size_t count = 1;
  for (const auto& child : node.children()) count += count_nodes(*child);
  return count;
}

void visit_preorder(const SchemaNode& node,
                    const std::function<void(const SchemaNode&)>& fn) {
  fn(node);
  for (const auto& child : node.children()) visit_preorder(*child, fn);
}

void load_children(const Node& decl, SchemaNode& target) {
  for (const Node* child : decl.child_elements()) {
    if (child->name() == "attribute") {
      const std::string_view* attr_name = child->attribute("name");
      if (attr_name == nullptr) throw SchemaError("<attribute> missing name");
      const std::string_view* use = child->attribute("use");
      target.declare_xml_attribute(std::string(*attr_name),
                                   use != nullptr && *use == "required");
      continue;
    }
    if (child->name() == "convention") continue;  // annotated-schema extension
    if (child->name() != "element") {
      throw SchemaError("unexpected declaration <" + std::string(child->name()) + ">");
    }
    const std::string_view* name = child->attribute("name");
    if (name == nullptr) throw SchemaError("<element> missing name");
    SchemaNode& node = target.add_child(std::string(*name));
    if (const std::string_view* type = child->attribute("type")) {
      node.set_leaf_type(leaf_type_from_string(*type));
    }
    if (const std::string_view* max_occurs = child->attribute("maxOccurs")) {
      node.set_repeatable(*max_occurs == "unbounded");
    }
    if (const std::string_view* min_occurs = child->attribute("minOccurs")) {
      node.set_optional(*min_occurs == "0");
    }
    if (const std::string_view* recursive = child->attribute("recursive")) {
      node.set_recursive(*recursive == "true");
    }
    load_children(*child, node);
    if (node.is_leaf() && node.leaf_type() == LeafType::kNone) {
      node.set_leaf_type(LeafType::kString);
    }
  }
}

void save_node(Node& parent, const SchemaNode& node) {
  Node* decl = parent.add_element("element");
  decl->add_attribute("name", node.name());
  if (node.leaf_type() != LeafType::kNone) {
    decl->add_attribute("type", std::string(to_string(node.leaf_type())));
  }
  if (node.repeatable()) decl->add_attribute("maxOccurs", "unbounded");
  decl->add_attribute("minOccurs", node.optional() ? "0" : "1");
  if (node.recursive()) decl->add_attribute("recursive", "true");
  for (const auto& attr : node.xml_attributes()) {
    Node* attr_decl = decl->add_element("attribute");
    attr_decl->add_attribute("name", attr.name);
    attr_decl->add_attribute("use", attr.required ? "required" : "optional");
  }
  for (const auto& child : node.children()) save_node(*decl, *child);
}

}  // namespace

std::size_t Schema::node_count() const noexcept { return count_nodes(*root_); }

void Schema::visit(const std::function<void(const SchemaNode&)>& fn) const {
  visit_preorder(*root_, fn);
}

Schema load_schema(std::string_view xml_text) {
  Document doc = parse(xml_text);
  if (doc.root->name() != "schema") {
    throw SchemaError("expected <schema> root, found <" + std::string(doc.root->name()) +
                      ">");
  }
  const std::string_view* root_name = doc.root->attribute("root");
  if (root_name == nullptr) throw SchemaError("<schema> missing root attribute");
  Schema schema{std::string(*root_name)};
  schema.root().set_optional(false);
  load_children(*doc.root, schema.root());
  return schema;
}

std::string save_schema(const Schema& schema) {
  NodePtr root = Node::element("schema");
  root->add_attribute("root", schema.root().name());
  for (const auto& attr : schema.root().xml_attributes()) {
    Node* attr_decl = root->add_element("attribute");
    attr_decl->add_attribute("name", attr.name);
    attr_decl->add_attribute("use", attr.required ? "required" : "optional");
  }
  for (const auto& child : schema.root().children()) save_node(*root, *child);
  return write(*root, WriteOptions{.declaration = false, .indent = 2});
}

}  // namespace hxrc::xml
