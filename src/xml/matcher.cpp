#include "xml/matcher.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace hxrc::xml {

bool compare_values(std::string_view lhs, CompareOp op, std::string_view rhs) noexcept {
  const auto lhs_num = util::parse_double(lhs);
  const auto rhs_num = util::parse_double(rhs);
  int cmp;
  if (lhs_num && rhs_num) {
    cmp = (*lhs_num < *rhs_num) ? -1 : (*lhs_num > *rhs_num) ? 1 : 0;
  } else {
    cmp = lhs.compare(rhs);
    cmp = (cmp < 0) ? -1 : (cmp > 0) ? 1 : 0;
  }
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

namespace {

class PathParser {
 public:
  explicit PathParser(std::string_view input) : input_(input) {}

  struct ParsedPredicate {
    std::vector<std::string> relative_path;
    bool has_comparison = false;
    CompareOp op = CompareOp::kEq;
    std::string literal;
  };

  struct ParsedStep {
    std::string name;
    bool descendant = false;
    std::vector<ParsedPredicate> predicates;
  };

  std::vector<ParsedStep> parse() {
    std::vector<ParsedStep> steps;
    bool next_descendant = false;
    if (consume("//")) {
      next_descendant = true;
    } else {
      consume("/");
    }
    for (;;) {
      ParsedStep step;
      step.descendant = next_descendant;
      step.name = parse_name_or_star();
      while (!at_end() && peek() == '[') {
        step.predicates.push_back(parse_predicate());
      }
      steps.push_back(std::move(step));
      if (at_end()) break;
      if (consume("//")) {
        next_descendant = true;
      } else if (consume("/")) {
        next_descendant = false;
      } else {
        fail("unexpected character");
      }
    }
    if (steps.empty()) fail("empty path");
    return steps;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw PathError(message + " in path '" + std::string(input_) + "' at offset " +
                    std::to_string(pos_));
  }

  bool at_end() const noexcept { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }

  bool consume(std::string_view token) noexcept {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_space() noexcept {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string parse_name_or_star() {
    if (at_end()) fail("expected a step name");
    if (peek() == '*') {
      ++pos_;
      return "*";
    }
    const std::size_t start = pos_;
    while (!at_end() && is_name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected a step name");
    return std::string(input_.substr(start, pos_ - start));
  }

  ParsedPredicate parse_predicate() {
    ParsedPredicate pred;
    if (!consume("[")) fail("expected '['");
    skip_space();
    if (consume(".")) {
      // self text; relative_path stays empty
    } else {
      pred.relative_path.push_back(parse_name_or_star());
      while (consume("/")) pred.relative_path.push_back(parse_name_or_star());
    }
    skip_space();
    if (!at_end() && peek() != ']') {
      pred.has_comparison = true;
      pred.op = parse_op();
      skip_space();
      pred.literal = parse_literal();
      skip_space();
    }
    if (!consume("]")) fail("expected ']'");
    return pred;
  }

  CompareOp parse_op() {
    if (consume("!=")) return CompareOp::kNe;
    if (consume("<=")) return CompareOp::kLe;
    if (consume(">=")) return CompareOp::kGe;
    if (consume("=")) return CompareOp::kEq;
    if (consume("<")) return CompareOp::kLt;
    if (consume(">")) return CompareOp::kGt;
    fail("expected a comparison operator");
  }

  std::string parse_literal() {
    if (at_end()) fail("expected a literal");
    const char c = peek();
    if (c == '\'' || c == '"') {
      ++pos_;
      const std::size_t start = pos_;
      while (!at_end() && peek() != c) ++pos_;
      if (at_end()) fail("unterminated string literal");
      std::string value(input_.substr(start, pos_ - start));
      ++pos_;
      return value;
    }
    const std::size_t start = pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                         peek() == '-' || peek() == '+' || peek() == 'e' || peek() == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a literal");
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

void collect_children(const Node& node, std::string_view name,
                      std::vector<const Node*>& out) {
  for (const auto& child : node.children()) {
    if (child->is_element() && (name == "*" || child->name() == name)) {
      out.push_back(child);
    }
  }
}

void collect_descendants(const Node& node, std::string_view name,
                         std::vector<const Node*>& out) {
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    if (name == "*" || child->name() == name) out.push_back(child);
    collect_descendants(*child, name, out);
  }
}

}  // namespace

Path Path::compile(std::string_view expression) {
  PathParser parser(expression);
  Path path;
  path.expression_ = std::string(expression);
  for (auto& parsed : parser.parse()) {
    Step step;
    step.name = std::move(parsed.name);
    step.descendant = parsed.descendant;
    for (auto& p : parsed.predicates) {
      Predicate pred;
      pred.relative_path = std::move(p.relative_path);
      pred.has_comparison = p.has_comparison;
      pred.op = p.op;
      pred.literal = std::move(p.literal);
      step.predicates.push_back(std::move(pred));
    }
    path.steps_.push_back(std::move(step));
  }
  return path;
}

bool Path::matches_predicates(const Node& node, const Step& step) const {
  for (const auto& pred : step.predicates) {
    // Resolve the relative path to candidate target nodes.
    std::vector<const Node*> targets{&node};
    for (const auto& segment : pred.relative_path) {
      std::vector<const Node*> next;
      for (const Node* t : targets) collect_children(*t, segment, next);
      targets = std::move(next);
      if (targets.empty()) break;
    }
    bool satisfied = false;
    for (const Node* t : targets) {
      if (!pred.has_comparison ||
          compare_values(t->text_content(), pred.op, pred.literal)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::vector<const Node*> Path::select(const Node& context) const {
  std::vector<const Node*> current{&context};
  for (const auto& step : steps_) {
    std::vector<const Node*> next;
    for (const Node* node : current) {
      std::vector<const Node*> candidates;
      if (step.descendant) {
        collect_descendants(*node, step.name, candidates);
      } else {
        collect_children(*node, step.name, candidates);
      }
      for (const Node* candidate : candidates) {
        if (matches_predicates(*candidate, step)) next.push_back(candidate);
      }
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

const Node* Path::select_first(const Node& context) const {
  auto all = select(context);
  return all.empty() ? nullptr : all.front();
}

std::vector<const Node*> select(const Node& context, std::string_view expression) {
  return Path::compile(expression).select(context);
}

}  // namespace hxrc::xml
