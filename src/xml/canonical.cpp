#include "xml/canonical.hpp"

#include <algorithm>

#include "util/string_util.hpp"
#include "xml/writer.hpp"

namespace hxrc::xml {

namespace {

/// Collapses internal whitespace runs to single spaces after trimming.
std::string collapse_whitespace(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_space = false;
  for (char c : util::trim(text)) {
    const bool space = (c == ' ' || c == '\t' || c == '\n' || c == '\r');
    if (space) {
      in_space = true;
    } else {
      if (in_space && !out.empty()) out.push_back(' ');
      in_space = false;
      out.push_back(c);
    }
  }
  return out;
}

void canonicalize(std::string& out, const Node& node) {
  if (node.is_text()) {
    const std::string collapsed = collapse_whitespace(node.value());
    if (!collapsed.empty()) out += escape_text(collapsed);
    return;
  }
  out.push_back('<');
  out += node.name();
  std::vector<Attribute> attrs = node.attributes();
  std::sort(attrs.begin(), attrs.end(),
            [](const Attribute& a, const Attribute& b) { return a.name < b.name; });
  for (const auto& attr : attrs) {
    out.push_back(' ');
    out += attr.name;
    out += "=\"";
    out += escape_attribute(attr.value);
    out.push_back('"');
  }
  out.push_back('>');
  for (const auto& child : node.children()) {
    canonicalize(out, *child);
  }
  append_close_tag(out, node.name());
}

}  // namespace

std::string canonical(const Node& node) {
  std::string out;
  canonicalize(out, node);
  return out;
}

std::string canonical(const Document& doc) {
  if (!doc.root) return {};
  return canonical(*doc.root);
}

bool semantically_equal(const Node& a, const Node& b) {
  return canonical(a) == canonical(b);
}

bool semantically_equal(const Document& a, const Document& b) {
  return canonical(a) == canonical(b);
}

}  // namespace hxrc::xml
