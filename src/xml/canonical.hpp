// Canonical form for semantic document comparison in tests.
//
// Two documents are considered semantically equal for catalog purposes when
// their canonical strings match: attributes sorted by name, text content
// trimmed and whitespace-collapsed, whitespace-only text dropped. Sibling
// *order* is preserved (the paper's response builder guarantees schema
// order), so canonicalization does not sort elements.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace hxrc::xml {

/// Canonical serialization of a subtree.
std::string canonical(const Node& node);

/// Canonical serialization of a document ("" for an empty document).
std::string canonical(const Document& doc);

/// Semantic equality via canonical forms.
bool semantically_equal(const Node& a, const Node& b);
bool semantically_equal(const Document& a, const Document& b);

}  // namespace hxrc::xml
