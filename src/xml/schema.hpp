// Schema model for community metadata schemas.
//
// Grid communities exchange metadata using a shared XML schema (the paper
// uses the FGDC-derived LEAD schema of Fig. 2). The catalog only needs the
// structural facts the hybrid partitioner consumes: element nesting,
// cardinality (single vs. repeatable), optionality, declared XML attributes,
// self-recursion, and leaf value types. This module models exactly that, and
// can load/save a compact XML schema-description format so schemas are
// data, not code.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hxrc::xml {

/// Value type of a leaf element. kNone marks interior elements.
enum class LeafType { kNone, kString, kInt, kDouble, kDate };

std::string_view to_string(LeafType type) noexcept;
LeafType leaf_type_from_string(std::string_view s);

/// Declaration of an XML attribute on an element.
struct SchemaAttrDecl {
  std::string name;
  bool required = false;
};

class SchemaError : public std::runtime_error {
 public:
  explicit SchemaError(const std::string& message) : std::runtime_error(message) {}
};

/// One element declaration in the schema tree.
class SchemaNode {
 public:
  explicit SchemaNode(std::string name) : name_(std::move(name)) {}

  SchemaNode(const SchemaNode&) = delete;
  SchemaNode& operator=(const SchemaNode&) = delete;

  const std::string& name() const noexcept { return name_; }

  LeafType leaf_type() const noexcept { return leaf_type_; }
  SchemaNode& set_leaf_type(LeafType type) noexcept {
    leaf_type_ = type;
    return *this;
  }
  bool is_leaf() const noexcept { return children_.empty(); }

  /// maxOccurs = unbounded.
  bool repeatable() const noexcept { return repeatable_; }
  SchemaNode& set_repeatable(bool value) noexcept {
    repeatable_ = value;
    return *this;
  }

  /// minOccurs = 0.
  bool optional() const noexcept { return optional_; }
  SchemaNode& set_optional(bool value) noexcept {
    optional_ = value;
    return *this;
  }

  /// The element may contain instances of itself (e.g. LEAD's attr/attr).
  bool recursive() const noexcept { return recursive_; }
  SchemaNode& set_recursive(bool value) noexcept {
    recursive_ = value;
    return *this;
  }

  const std::vector<SchemaAttrDecl>& xml_attributes() const noexcept {
    return xml_attributes_;
  }
  SchemaNode& declare_xml_attribute(std::string name, bool required = false) {
    xml_attributes_.push_back(SchemaAttrDecl{std::move(name), required});
    return *this;
  }

  const std::vector<std::unique_ptr<SchemaNode>>& children() const noexcept {
    return children_;
  }
  SchemaNode* parent() const noexcept { return parent_; }

  /// Adds a child declaration and returns it for fluent building.
  SchemaNode& add_child(std::string name);

  /// Child declaration by name, or nullptr.
  const SchemaNode* child(std::string_view name) const noexcept;

  /// Depth from the root (root = 0).
  std::size_t depth() const noexcept;

 private:
  std::string name_;
  LeafType leaf_type_ = LeafType::kNone;
  bool repeatable_ = false;
  bool optional_ = true;
  bool recursive_ = false;
  std::vector<SchemaAttrDecl> xml_attributes_;
  std::vector<std::unique_ptr<SchemaNode>> children_;
  SchemaNode* parent_ = nullptr;
};

/// A community metadata schema: a tree of element declarations.
class Schema {
 public:
  explicit Schema(std::string root_name)
      : root_(std::make_unique<SchemaNode>(std::move(root_name))) {}

  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  const SchemaNode& root() const noexcept { return *root_; }
  SchemaNode& root() noexcept { return *root_; }

  /// Node at a slash-separated path from (and excluding) the root, e.g.
  /// "data/idinfo/keywords/theme". Empty path returns the root.
  const SchemaNode* find(std::string_view path) const noexcept;

  /// Total number of element declarations.
  std::size_t node_count() const noexcept;

  /// Pre-order traversal.
  void visit(const std::function<void(const SchemaNode&)>& fn) const;

 private:
  std::unique_ptr<SchemaNode> root_;
};

/// Loads a schema from the compact XML description format:
///
///   <schema root="LEADresource">
///     <element name="resourceID" type="string" minOccurs="0"/>
///     <element name="data">
///       <element name="theme" maxOccurs="unbounded"> ... </element>
///       <element name="attr" maxOccurs="unbounded" recursive="true">
///         <attribute name="unit" use="optional"/>
///         ...
///       </element>
///     </element>
///   </schema>
///
/// Throws SchemaError / ParseError on malformed input.
Schema load_schema(std::string_view xml_text);

/// Serializes a schema back to the description format (round-trips).
std::string save_schema(const Schema& schema);

}  // namespace hxrc::xml
