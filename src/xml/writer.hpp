// XML serialization with correct escaping.
#pragma once

#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace hxrc::xml {

struct WriteOptions {
  /// Emit the <?xml ...?> declaration before the root element.
  bool declaration = false;
  /// Pretty-print with this many spaces per depth level; 0 = compact.
  int indent = 0;
};

/// Escapes character data for element content (&, <, >).
std::string escape_text(std::string_view text);

/// Escapes character data for a double-quoted attribute value.
std::string escape_attribute(std::string_view text);

/// Append-to-out forms of the escapers: copy unescaped runs in bulk instead
/// of byte-at-a-time, and reuse the caller's buffer. The ingest hot path
/// serializes every attribute subtree to a CLOB, so this is where most of
/// the writer's time goes.
void append_escaped_text(std::string& out, std::string_view text);
void append_escaped_attribute(std::string& out, std::string_view text);

/// Serializes a subtree.
std::string write(const Node& node, const WriteOptions& options = {});

/// Appends the serialized subtree to `out` (no declaration). Lets callers
/// that serialize many subtrees reuse one growth-amortized buffer.
void write_into(std::string& out, const Node& node, const WriteOptions& options = {});

/// Serializes a whole document.
std::string write(const Document& doc, const WriteOptions& options = {});

/// Appends the opening tag of an element (attributes included) to out.
/// Exposed separately because the hybrid response builder emits tags from
/// the relational global-ordering table without materializing a DOM.
void append_open_tag(std::string& out, std::string_view name,
                     const std::vector<Attribute>& attributes);
void append_close_tag(std::string& out, std::string_view name);

}  // namespace hxrc::xml
