// A small XPath-like selector over the DOM.
//
// Used by the pure-CLOB baseline (which must evaluate queries by scanning
// and matching parsed documents, Xindice-style) and by tests as an
// independent oracle for the hybrid query engine.
//
// Grammar (subset of XPath 1.0 abbreviated syntax):
//   path      := ('//')? step (('/' | '//') step)*
//   step      := (NAME | '*') predicate*
//   predicate := '[' expr ']'
//   expr      := relpath (op literal)?        -- existence or comparison
//   relpath   := '.' | NAME ('/' NAME)*       -- text() of the target
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := 'single' | "double" | number
//
// Comparisons are numeric when both operands parse as doubles, otherwise
// lexicographic on the raw strings.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace hxrc::xml {

class PathError : public std::runtime_error {
 public:
  explicit PathError(const std::string& message) : std::runtime_error(message) {}
};

/// Comparison operators shared with the catalog query model.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Three-valued comparison used across the code base: numeric when both
/// sides parse as numbers, else string comparison.
bool compare_values(std::string_view lhs, CompareOp op, std::string_view rhs) noexcept;

/// A compiled path expression.
class Path {
 public:
  /// Compiles the expression; throws PathError on syntax errors.
  static Path compile(std::string_view expression);

  /// All element nodes selected from the given context element.
  /// The context node itself is the starting point: the first step matches
  /// its children (or all descendants after '//').
  std::vector<const Node*> select(const Node& context) const;

  /// Convenience: first match or nullptr.
  const Node* select_first(const Node& context) const;

  /// Convenience: true when at least one node matches.
  bool exists(const Node& context) const { return select_first(context) != nullptr; }

  const std::string& expression() const noexcept { return expression_; }

 private:
  struct Predicate {
    std::vector<std::string> relative_path;  // empty means '.' (self)
    bool has_comparison = false;
    CompareOp op = CompareOp::kEq;
    std::string literal;
  };

  struct Step {
    std::string name;  // "*" matches any element
    bool descendant = false;  // reached via '//'
    std::vector<Predicate> predicates;
  };

  bool matches_predicates(const Node& node, const Step& step) const;

  std::string expression_;
  std::vector<Step> steps_;
};

/// One-shot helper: compile and select.
std::vector<const Node*> select(const Node& context, std::string_view expression);

}  // namespace hxrc::xml
