// Minimal XML document object model.
//
// The catalog ingests schema-based metadata documents, so the DOM only needs
// elements, attributes, and character data (comments and processing
// instructions are discarded at parse time). Nodes own their children via
// unique_ptr and keep a non-owning parent pointer for upward navigation.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hxrc::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

/// A single XML attribute (name="value").
struct Attribute {
  std::string name;
  std::string value;
};

/// An element or text node.
class Node {
 public:
  enum class Kind { kElement, kText };

  static NodePtr element(std::string name);
  static NodePtr text(std::string value);

  Kind kind() const noexcept { return kind_; }
  bool is_element() const noexcept { return kind_ == Kind::kElement; }
  bool is_text() const noexcept { return kind_ == Kind::kText; }

  /// Element tag name; empty for text nodes.
  const std::string& name() const noexcept { return name_; }

  /// Character data; empty for element nodes.
  const std::string& value() const noexcept { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  const std::vector<Attribute>& attributes() const noexcept { return attributes_; }
  void add_attribute(std::string name, std::string value);
  /// Returns nullptr when the attribute is absent.
  const std::string* attribute(std::string_view name) const noexcept;

  const std::vector<NodePtr>& children() const noexcept { return children_; }
  Node* parent() const noexcept { return parent_; }

  /// Appends a child and returns a stable pointer to it.
  Node* add_child(NodePtr child);
  /// Convenience: appends <name>text</name> and returns the new element.
  Node* add_element(std::string name);
  Node* add_element(std::string name, std::string text_content);
  /// Appends a text child.
  Node* add_text(std::string text_content);

  /// First child element with the given tag, or nullptr.
  const Node* first_child(std::string_view tag) const noexcept;
  Node* first_child(std::string_view tag) noexcept;

  /// All child elements with the given tag.
  std::vector<const Node*> children_named(std::string_view tag) const;

  /// All child elements (skipping text nodes).
  std::vector<const Node*> child_elements() const;

  /// Concatenated text of direct text children, whitespace-trimmed.
  std::string text_content() const;

  /// Text content of the first child element with the given tag ("" if none).
  std::string child_text(std::string_view tag) const;

  /// True when the element has no element children (only text, if anything).
  bool is_leaf_element() const noexcept;

  /// Deep copy of this subtree (parent of the copy is null).
  NodePtr clone() const;

  /// Number of element nodes in this subtree (including this one).
  std::size_t subtree_element_count() const noexcept;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::string value_;
  std::vector<Attribute> attributes_;
  std::vector<NodePtr> children_;
  Node* parent_ = nullptr;
};

/// An XML document: a single root element.
struct Document {
  NodePtr root;

  Document() = default;
  explicit Document(NodePtr r) : root(std::move(r)) {}

  Document clone() const {
    Document d;
    if (root) d.root = root->clone();
    return d;
  }
};

}  // namespace hxrc::xml
