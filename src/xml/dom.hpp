// Minimal XML document object model.
//
// The catalog ingests schema-based metadata documents, so the DOM only needs
// elements, attributes, and character data (comments and processing
// instructions are discarded at parse time). Names, values, and attributes
// are string_views over one of two backing stores:
//
//  * owned mode (programmatic building, xml::parse): each node carries its
//    own string storage and owns its children — the traditional DOM.
//  * arena mode (xml::parse_arena): nodes are pool-allocated in a DomArena
//    the Document shares ownership of; names and unescaped text view the
//    arena's copy of the input buffer, escape-containing text is unescaped
//    into the arena. No per-node heap string, no per-node unique_ptr.
//
// Nodes never move once created (heap- or pool-allocated), so views into a
// node's own storage are stable for the node's lifetime.
#pragma once

#include <deque>
#include <forward_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.hpp"

namespace hxrc::xml {

class Node;
class DomArena;

/// Deleter for owned nodes; a no-op for pool-allocated nodes (their DomArena
/// destroys them), so arena roots can travel in a NodePtr safely.
struct NodeDeleter {
  void operator()(Node* node) const noexcept;
};
using NodePtr = std::unique_ptr<Node, NodeDeleter>;

/// A single XML attribute (name="value"). Views into the owning node's
/// storage (owned mode) or the document's arena (arena mode).
struct Attribute {
  std::string_view name;
  std::string_view value;
};

/// An element or text node.
class Node {
 public:
  enum class Kind { kElement, kText };

  /// Prefer the factories (or DomArena) — the constructor is public only so
  /// pool containers can emplace nodes.
  explicit Node(Kind kind) : kind_(kind) {}
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  static NodePtr element(std::string name);
  static NodePtr text(std::string value);

  Kind kind() const noexcept { return kind_; }
  bool is_element() const noexcept { return kind_ == Kind::kElement; }
  bool is_text() const noexcept { return kind_ == Kind::kText; }
  /// True for pool-allocated (arena) nodes, whose lifetime is the arena's.
  bool pooled() const noexcept { return pooled_; }

  /// Element tag name; empty for text nodes.
  std::string_view name() const noexcept { return name_; }

  /// Character data; empty for element nodes.
  std::string_view value() const noexcept { return value_; }
  void set_value(std::string v) { value_ = own(std::move(v)); }

  const std::vector<Attribute>& attributes() const noexcept { return attributes_; }
  void add_attribute(std::string name, std::string value);
  /// Returns nullptr when the attribute is absent.
  const std::string_view* attribute(std::string_view name) const noexcept;

  const std::vector<Node*>& children() const noexcept { return children_; }
  Node* parent() const noexcept { return parent_; }

  /// Appends a child and returns a stable pointer to it. The child must be
  /// an owned node (factory-built or cloned); ownership transfers here.
  Node* add_child(NodePtr child);
  /// Convenience: appends <name>text</name> and returns the new element.
  Node* add_element(std::string name);
  Node* add_element(std::string name, std::string text_content);
  /// Appends a text child.
  Node* add_text(std::string text_content);

  /// First child element with the given tag, or nullptr.
  const Node* first_child(std::string_view tag) const noexcept;
  Node* first_child(std::string_view tag) noexcept;

  /// All child elements with the given tag.
  std::vector<const Node*> children_named(std::string_view tag) const;

  /// All child elements (skipping text nodes).
  std::vector<const Node*> child_elements() const;

  /// Concatenated text of direct text children, whitespace-trimmed.
  std::string text_content() const;

  /// Allocation-free variant: with zero or one text child (the common case)
  /// the returned view aliases the child's storage; otherwise the
  /// concatenation is built in `scratch` and the view aliases that.
  std::string_view text_view(std::string& scratch) const;

  /// Text content of the first child element with the given tag ("" if none).
  std::string child_text(std::string_view tag) const;

  /// Allocation-free variant of child_text (see text_view for the scratch
  /// contract).
  std::string_view child_text_view(std::string_view tag, std::string& scratch) const;

  /// True when the element has no element children (only text, if anything).
  bool is_leaf_element() const noexcept;

  /// Deep owned copy of this subtree (parent of the copy is null). Cloning
  /// an arena node yields an owned tree independent of the arena.
  NodePtr clone() const;

  /// Number of element nodes in this subtree (including this one).
  std::size_t subtree_element_count() const noexcept;

 private:
  friend class DomArena;
  friend struct NodeDeleter;

  /// Moves `s` into this node's stable string store and returns a view.
  std::string_view own(std::string s) {
    strings_.push_front(std::move(s));
    return strings_.front();
  }

  Kind kind_;
  bool pooled_ = false;
  std::string_view name_;
  std::string_view value_;
  std::vector<Attribute> attributes_;
  std::vector<Node*> children_;
  Node* parent_ = nullptr;
  /// Owned-mode backing for name_/value_/attributes_. forward_list keeps
  /// element addresses stable under growth and costs one pointer when empty
  /// (the arena-mode case).
  std::forward_list<std::string> strings_;
};

/// Backing store for arena-parsed documents: a node pool plus a byte arena
/// holding the input copy and any unescaped text. Owned (shared_ptr) by
/// every Document handed out for it, so subtrees stay valid as long as any
/// document referencing them lives.
class DomArena {
 public:
  /// Copies the raw input into the arena and returns the stable copy the
  /// parser tokenizes against.
  std::string_view store_source(std::string_view input) { return arena_.store(input); }

  /// Copies transient bytes (unescaped text) into the arena.
  std::string_view store(std::string_view s) { return arena_.store(s); }

  Node* make_element(std::string_view name) {
    Node& node = nodes_.emplace_back(Node::Kind::kElement);
    node.pooled_ = true;
    node.name_ = name;
    return &node;
  }

  Node* make_text(std::string_view value) {
    Node& node = nodes_.emplace_back(Node::Kind::kText);
    node.pooled_ = true;
    node.value_ = value;
    return &node;
  }

  /// Links a pooled child under a pooled parent (no ownership transfer —
  /// the pool owns both).
  static void link(Node& parent, Node* child) {
    child->parent_ = &parent;
    parent.children_.push_back(child);
  }

  static void add_pooled_attribute(Node& node, std::string_view name,
                                   std::string_view value) {
    node.attributes_.push_back(Attribute{name, value});
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Approximate footprint: reserved arena blocks plus the node pool.
  std::size_t bytes() const noexcept {
    return arena_.bytes_reserved() + nodes_.size() * sizeof(Node);
  }

 private:
  util::Arena arena_;
  std::deque<Node> nodes_;
};

/// An XML document: a single root element, plus (for arena-parsed documents)
/// shared ownership of the backing arena.
struct Document {
  /// Declared before `root` so destruction runs the root's NodeDeleter
  /// (which reads the node's pooled flag) while the arena is still alive.
  std::shared_ptr<DomArena> storage;
  NodePtr root;

  Document() = default;
  explicit Document(NodePtr r) : root(std::move(r)) {}
  Document(NodePtr r, std::shared_ptr<DomArena> s)
      : storage(std::move(s)), root(std::move(r)) {}

  /// Deep owned copy (independent of any arena).
  Document clone() const {
    Document d;
    if (root) d.root = root->clone();
    return d;
  }

  /// Arena footprint in bytes; 0 for owned documents.
  std::size_t arena_bytes() const noexcept { return storage ? storage->bytes() : 0; }
};

}  // namespace hxrc::xml
