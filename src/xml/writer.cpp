#include "xml/writer.hpp"

namespace hxrc::xml {

void append_escaped_text(std::string& out, std::string_view text) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '&' && c != '<' && c != '>') continue;
    out.append(text.substr(start, i - start));
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      default: out += "&gt;"; break;
    }
    start = i + 1;
  }
  out.append(text.substr(start));
}

void append_escaped_attribute(std::string& out, std::string_view text) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '&' && c != '<' && c != '>' && c != '"' && c != '\n' && c != '\t') continue;
    out.append(text.substr(start, i - start));
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      default: out += "&#9;"; break;
    }
    start = i + 1;
  }
  out.append(text.substr(start));
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped_text(out, text);
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_escaped_attribute(out, text);
  return out;
}

void append_open_tag(std::string& out, std::string_view name,
                     const std::vector<Attribute>& attributes) {
  out.push_back('<');
  out += name;
  for (const auto& attr : attributes) {
    out.push_back(' ');
    out += attr.name;
    out += "=\"";
    append_escaped_attribute(out, attr.value);
    out.push_back('"');
  }
  out.push_back('>');
}

void append_close_tag(std::string& out, std::string_view name) {
  out += "</";
  out += name;
  out.push_back('>');
}

namespace {

/// Compact (indent == 0) serialization: no indent bookkeeping and no
/// child-kind pre-scan, since inline/blocked layout only matters when
/// pretty-printing. This is the CLOB hot path — every ingested attribute
/// subtree passes through here.
void write_node_compact(std::string& out, const Node& node) {
  if (node.is_text()) {
    append_escaped_text(out, node.value());
    return;
  }
  if (node.children().empty()) {
    out.push_back('<');
    out += node.name();
    for (const auto& attr : node.attributes()) {
      out.push_back(' ');
      out += attr.name;
      out += "=\"";
      append_escaped_attribute(out, attr.value);
      out.push_back('"');
    }
    out += "/>";
    return;
  }
  append_open_tag(out, node.name(), node.attributes());
  for (const auto& child : node.children()) write_node_compact(out, *child);
  append_close_tag(out, node.name());
}

void write_node(std::string& out, const Node& node, const WriteOptions& options, int depth) {
  if (options.indent <= 0) {
    write_node_compact(out, node);
    return;
  }
  if (node.is_text()) {
    append_escaped_text(out, node.value());
    return;
  }
  const bool pretty = options.indent > 0;
  auto indent = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(d) * options.indent, ' ');
  };

  indent(depth);
  if (node.children().empty()) {
    out.push_back('<');
    out += node.name();
    for (const auto& attr : node.attributes()) {
      out.push_back(' ');
      out += attr.name;
      out += "=\"";
      append_escaped_attribute(out, attr.value);
      out.push_back('"');
    }
    out += "/>";
    if (pretty) out.push_back('\n');
    return;
  }

  append_open_tag(out, node.name(), node.attributes());

  // Mixed or text-only content is written inline; element-only content is
  // written one child per line when pretty-printing.
  bool has_element_child = false;
  for (const auto& child : node.children()) {
    if (child->is_element()) has_element_child = true;
  }
  const bool inline_content = !has_element_child;

  if (pretty && !inline_content) out.push_back('\n');
  for (const auto& child : node.children()) {
    if (inline_content) {
      write_node(out, *child, WriteOptions{.declaration = false, .indent = 0}, 0);
    } else {
      if (child->is_text()) {
        // Whitespace-insignificant mixed content: emit inline without indent.
        append_escaped_text(out, child->value());
      } else {
        write_node(out, *child, options, depth + 1);
      }
    }
  }
  if (pretty && !inline_content) indent(depth);
  append_close_tag(out, node.name());
  if (pretty) out.push_back('\n');
}

}  // namespace

void write_into(std::string& out, const Node& node, const WriteOptions& options) {
  write_node(out, node, options, 0);
}

std::string write(const Node& node, const WriteOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (options.declaration && options.indent > 0) out.push_back('\n');
  write_node(out, node, options, 0);
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  if (!doc.root) return {};
  return write(*doc.root, options);
}

}  // namespace hxrc::xml
