#include "xml/writer.hpp"

namespace hxrc::xml {

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_open_tag(std::string& out, std::string_view name,
                     const std::vector<Attribute>& attributes) {
  out.push_back('<');
  out += name;
  for (const auto& attr : attributes) {
    out.push_back(' ');
    out += attr.name;
    out += "=\"";
    out += escape_attribute(attr.value);
    out.push_back('"');
  }
  out.push_back('>');
}

void append_close_tag(std::string& out, std::string_view name) {
  out += "</";
  out += name;
  out.push_back('>');
}

namespace {

void write_node(std::string& out, const Node& node, const WriteOptions& options, int depth) {
  if (node.is_text()) {
    out += escape_text(node.value());
    return;
  }
  const bool pretty = options.indent > 0;
  auto indent = [&](int d) {
    if (pretty) out.append(static_cast<std::size_t>(d) * options.indent, ' ');
  };

  indent(depth);
  if (node.children().empty()) {
    out.push_back('<');
    out += node.name();
    for (const auto& attr : node.attributes()) {
      out.push_back(' ');
      out += attr.name;
      out += "=\"";
      out += escape_attribute(attr.value);
      out.push_back('"');
    }
    out += "/>";
    if (pretty) out.push_back('\n');
    return;
  }

  append_open_tag(out, node.name(), node.attributes());

  // Mixed or text-only content is written inline; element-only content is
  // written one child per line when pretty-printing.
  bool has_element_child = false;
  for (const auto& child : node.children()) {
    if (child->is_element()) has_element_child = true;
  }
  const bool inline_content = !has_element_child;

  if (pretty && !inline_content) out.push_back('\n');
  for (const auto& child : node.children()) {
    if (inline_content) {
      write_node(out, *child, WriteOptions{.declaration = false, .indent = 0}, 0);
    } else {
      if (child->is_text()) {
        // Whitespace-insignificant mixed content: emit inline without indent.
        out += escape_text(child->value());
      } else {
        write_node(out, *child, options, depth + 1);
      }
    }
  }
  if (pretty && !inline_content) indent(depth);
  append_close_tag(out, node.name());
  if (pretty) out.push_back('\n');
}

}  // namespace

std::string write(const Node& node, const WriteOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (options.declaration && options.indent > 0) out.push_back('\n');
  write_node(out, node, options, 0);
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  if (!doc.root) return {};
  return write(*doc.root, options);
}

}  // namespace hxrc::xml
