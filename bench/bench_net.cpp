// catalog_load / bench_net — closed-loop load generator for catalog_server.
//
// Drives hundreds-to-thousands of concurrent TCP connections against the
// framed wire protocol, closed loop: every connection keeps `--pipeline`
// requests outstanding and issues the next request the moment a response
// lands. The workload is mixed — most connections read (query / fetch /
// stats), every `--writer-every`-th connection continuously ingests — so
// the server is measured with a live writer mutating the catalog under the
// readers, the scenario the MVCC engine exists for (DESIGN.md §12, E15).
//
// Connections are sharded over a few client threads, each multiplexing its
// share with epoll; per-response latency (send → frame decoded) feeds a
// shared lock-free histogram, reported as p50/p99/p999 + throughput.
//
// Two modes:
//
//   catalog_load --host H --port P --connections N --duration S
//     load an externally started catalog_server; prints a summary and, with
//     --json[=path], writes the record (default BENCH_net.json).
//
//   bench_net --gate
//     CI smoke: spawns an in-process server (preloaded catalog, default
//     watermarks), slams it with 512 connections including live writers,
//     and exits non-zero unless every frame came back intact — zero
//     mangled, zero dropped, zero protocol errors server-side, and no
//     overloaded/draining floods (saturation must surface as socket
//     backpressure, not error responses). Writes BENCH_net.json.
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_stamp.hpp"
#include "core/catalog.hpp"
#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/writer.hpp"

namespace {

using namespace hxrc;
using Clock = std::chrono::steady_clock;

struct LoadConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7070;
  std::size_t connections = 64;
  std::size_t threads = 0;  // 0 = derived from connection count
  double duration_s = 5.0;
  std::size_t pipeline = 1;
  /// Every Nth connection is a writer (ingest loop); 0 = read-only.
  std::size_t writer_every = 16;
  /// fetch requests draw objectIDs from [0, fetch_max); 0 disables fetch.
  std::size_t fetch_max = 0;
  std::string json_path;
  bool gate = false;
};

/// Aggregate counters, shared across client threads.
struct LoadTotals {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};          // status="error", any code
  std::atomic<std::uint64_t> overloaded{0};      // of which code="overloaded"
  std::atomic<std::uint64_t> draining{0};        // of which code="draining"
  std::atomic<std::uint64_t> mangled{0};         // frame/payload failed validation
  std::atomic<std::uint64_t> dropped{0};         // request never answered
  std::atomic<std::uint64_t> connect_failures{0};
  std::atomic<std::uint64_t> writes{0};          // ingest requests issued
  util::LatencyHistogram latency;
};

/// Pre-generated request bodies, shared read-only by every connection.
struct RequestPools {
  std::vector<std::string> queries;
  std::vector<std::string> ingests;
  std::string stats;
};

RequestPools build_pools() {
  RequestPools pools;
  workload::QueryGenerator query_gen;
  for (std::uint64_t q = 0; q < 64; ++q) {
    // query_to_xml emits the full <catalogRequest type="query"> wire form.
    pools.queries.push_back(core::query_to_xml(query_gen.generate(q)));
  }
  workload::DocumentGenerator doc_gen;
  for (std::uint64_t d = 0; d < 128; ++d) {
    pools.ingests.push_back("<catalogRequest type=\"ingest\" version=\"1\">" +
                            xml::write(doc_gen.generate(100000 + d)) +
                            "</catalogRequest>");
  }
  pools.stats = "<catalogRequest type=\"stats\" version=\"1\"/>";
  return pools;
}

struct Conn {
  net::Socket sock;
  std::size_t index = 0;
  bool is_writer = false;
  std::string inbuf;
  std::string outbuf;
  std::size_t outpos = 0;
  /// request id → send time, for every in-flight request.
  std::unordered_map<std::uint32_t, Clock::time_point> pending;
  std::uint32_t next_id = 1;
  std::uint64_t round = 0;
  bool stopped = false;  // deadline passed: no new requests
  bool closed = false;
};

/// One client thread: epoll over its shard of connections.
class ClientShard {
 public:
  ClientShard(const LoadConfig& config, const RequestPools& pools, LoadTotals& totals)
      : config_(config), pools_(pools), totals_(totals) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw net::SocketError("epoll_create1 failed");
  }
  ~ClientShard() { ::close(epoll_fd_); }

  void add_connection(std::size_t index) {
    auto conn = std::make_unique<Conn>();
    conn->index = index;
    conn->is_writer =
        config_.writer_every != 0 && index % config_.writer_every == 0;
    try {
      conn->sock = net::connect_tcp(config_.host, config_.port);
      net::set_nodelay(conn->sock.fd());
      net::set_nonblocking(conn->sock.fd());
    } catch (const net::SocketError&) {
      totals_.connect_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conns_.size();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->sock.fd(), &ev);
    conns_.push_back(std::move(conn));
  }

  std::size_t connected() const { return conns_.size(); }

  void run(Clock::time_point deadline, Clock::time_point force_exit) {
    for (auto& conn : conns_) {
      for (std::size_t i = 0; i < config_.pipeline; ++i) send_next(*conn);
    }
    std::vector<epoll_event> events(64);
    std::size_t open = conns_.size();
    while (open > 0) {
      const Clock::time_point now = Clock::now();
      if (now >= force_exit) break;
      const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                     static_cast<int>(events.size()), 50);
      const bool past_deadline = Clock::now() >= deadline;
      for (int i = 0; i < ready; ++i) {
        Conn& conn = *conns_[events[static_cast<std::size_t>(i)].data.u64];
        if (conn.closed) continue;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if ((mask & EPOLLOUT) != 0) flush(conn);
        if (conn.closed) continue;
        if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
          handle_readable(conn, past_deadline);
        }
      }
      if (past_deadline) {
        open = 0;
        for (auto& conn : conns_) {
          if (conn->closed) continue;
          conn->stopped = true;
          if (conn->pending.empty() && conn->outpos == conn->outbuf.size()) {
            close_conn(*conn);
          } else {
            ++open;
          }
        }
      }
    }
    // Anything still unanswered at force-exit was dropped.
    for (auto& conn : conns_) {
      if (conn->closed) continue;
      totals_.dropped.fetch_add(conn->pending.size(), std::memory_order_relaxed);
      close_conn(*conn);
    }
  }

 private:
  const std::string& pick_request(Conn& conn) {
    const std::uint64_t round = conn.round++;
    if (conn.is_writer) {
      totals_.writes.fetch_add(1, std::memory_order_relaxed);
      return pools_.ingests[(conn.index + round) % pools_.ingests.size()];
    }
    if (round % 8 == 7) return pools_.stats;
    if (config_.fetch_max != 0 && round % 4 == 3) {
      // fetch bodies are tiny; build per call rather than pooling every id
      fetch_scratch_ = "<catalogRequest type=\"fetch\" version=\"1\" objectID=\"" +
                       std::to_string((conn.index * 31 + round) % config_.fetch_max) +
                       "\"/>";
      return fetch_scratch_;
    }
    return pools_.queries[(conn.index * 7 + round) % pools_.queries.size()];
  }

  void send_next(Conn& conn) {
    if (conn.stopped || conn.closed) return;
    const std::uint32_t id = conn.next_id++;
    net::append_frame(conn.outbuf, net::FrameType::kRequest, id, pick_request(conn));
    conn.pending.emplace(id, Clock::now());
    totals_.requests.fetch_add(1, std::memory_order_relaxed);
    flush(conn);
  }

  void flush(Conn& conn) {
    while (conn.outpos < conn.outbuf.size()) {
      // MSG_NOSIGNAL: a server-side close mid-send must fail this
      // connection, not SIGPIPE the whole load generator.
      const ssize_t n = ::send(conn.sock.fd(), conn.outbuf.data() + conn.outpos,
                               conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.outpos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail_conn(conn);
      return;
    }
    if (conn.outpos == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.outpos = 0;
    }
    update_interest(conn);
  }

  void handle_readable(Conn& conn, bool past_deadline) {
    char buffer[64 * 1024];
    for (int round = 0; round < 8 && !conn.closed; ++round) {
      const ssize_t n = ::read(conn.sock.fd(), buffer, sizeof(buffer));
      if (n > 0) {
        conn.inbuf.append(buffer, static_cast<std::size_t>(n));
        parse_responses(conn, past_deadline);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      fail_conn(conn);  // EOF or error with requests possibly outstanding
      return;
    }
  }

  void parse_responses(Conn& conn, bool past_deadline) {
    std::size_t consumed = 0;
    for (;;) {
      const net::DecodeResult result = net::decode_frame(
          std::string_view(conn.inbuf).substr(consumed), 64u << 20);
      if (result.status == net::DecodeStatus::kNeedMore) break;
      if (result.status != net::DecodeStatus::kFrame) {
        totals_.mangled.fetch_add(1, std::memory_order_relaxed);
        conn.inbuf.erase(0, consumed);
        fail_conn(conn);
        return;
      }
      consumed += result.consumed;
      account_response(conn, result.frame);
      if (!past_deadline) send_next(conn);
      if (conn.closed) return;
    }
    conn.inbuf.erase(0, consumed);
  }

  void account_response(Conn& conn, const net::Frame& frame) {
    totals_.responses.fetch_add(1, std::memory_order_relaxed);
    const auto it = conn.pending.find(frame.request_id);
    if (it == conn.pending.end()) {
      totals_.mangled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - it->second);
    conn.pending.erase(it);
    totals_.latency.record(static_cast<std::uint64_t>(micros.count()));

    // The payload must be a <catalogResponse> carrying the protocol
    // handshake; anything else is a mangled frame.
    const std::string& body = frame.payload;
    if (body.rfind("<catalogResponse ", 0) != 0 ||
        body.find("protocol=\"1\"") == std::string::npos) {
      totals_.mangled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (body.find("status=\"ok\"") != std::string::npos) {
      totals_.ok.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    totals_.errors.fetch_add(1, std::memory_order_relaxed);
    if (body.find("code=\"overloaded\"") != std::string::npos) {
      totals_.overloaded.fetch_add(1, std::memory_order_relaxed);
    } else if (body.find("code=\"draining\"") != std::string::npos) {
      totals_.draining.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void update_interest(Conn& conn) {
    if (conn.closed) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.outpos < conn.outbuf.size() ? EPOLLOUT : 0u);
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].get() == &conn) {
        ev.data.u64 = i;
        break;
      }
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
  }

  void fail_conn(Conn& conn) {
    totals_.dropped.fetch_add(conn.pending.size(), std::memory_order_relaxed);
    conn.pending.clear();
    close_conn(conn);
  }

  void close_conn(Conn& conn) {
    if (conn.closed) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.sock.fd(), nullptr);
    conn.sock.reset();
    conn.closed = true;
  }

  const LoadConfig& config_;
  const RequestPools& pools_;
  LoadTotals& totals_;
  int epoll_fd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::string fetch_scratch_;
};

/// Lifts RLIMIT_NOFILE to cover `fds` descriptors (client + in-process
/// server sides both count).
void raise_fd_limit(std::size_t fds) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  const rlim_t needed = static_cast<rlim_t>(fds);
  if (limit.rlim_cur >= needed) return;
  limit.rlim_cur = needed > limit.rlim_max ? limit.rlim_max : needed;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

struct LoadReport {
  double elapsed_s = 0;
  std::size_t connected = 0;
};

LoadReport run_load(const LoadConfig& config, const RequestPools& pools,
                    LoadTotals& totals) {
  std::size_t threads = config.threads;
  if (threads == 0) {
    threads = (config.connections + 63) / 64;
    const std::size_t cores = std::thread::hardware_concurrency();
    if (cores != 0 && threads > cores) threads = cores;
    if (threads > 8) threads = 8;
    if (threads == 0) threads = 1;
  }

  std::vector<std::unique_ptr<ClientShard>> shards;
  for (std::size_t t = 0; t < threads; ++t) {
    shards.push_back(std::make_unique<ClientShard>(config, pools, totals));
  }
  LoadReport report;
  for (std::size_t c = 0; c < config.connections; ++c) {
    shards[c % threads]->add_connection(c);
  }
  for (const auto& shard : shards) report.connected += shard->connected();

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(static_cast<long>(config.duration_s * 1000));
  const Clock::time_point force_exit = deadline + std::chrono::seconds(10);
  std::vector<std::thread> workers;
  for (auto& shard : shards) {
    workers.emplace_back([&shard, deadline, force_exit] {
      shard->run(deadline, force_exit);
    });
  }
  for (auto& worker : workers) worker.join();
  report.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

void write_json(const std::string& path, const LoadConfig& config,
                const LoadTotals& totals, const LoadReport& report,
                const net::ServerStats* server_stats) {
  std::ofstream out(path);
  const double rps =
      report.elapsed_s > 0
          ? static_cast<double>(totals.responses.load()) / report.elapsed_s
          : 0.0;
  out << "[\n  {\"name\": \"net/closed_loop/" << config.connections << "\""
      << ", \"connections\": " << config.connections
      << ", \"connected\": " << report.connected
      << ", \"pipeline\": " << config.pipeline
      << ", \"duration_s\": " << report.elapsed_s
      << ", \"requests\": " << totals.requests.load()
      << ", \"responses\": " << totals.responses.load()
      << ", \"ok\": " << totals.ok.load()
      << ", \"errors\": " << totals.errors.load()
      << ", \"overloaded\": " << totals.overloaded.load()
      << ", \"draining\": " << totals.draining.load()
      << ", \"mangled\": " << totals.mangled.load()
      << ", \"dropped\": " << totals.dropped.load()
      << ", \"writes\": " << totals.writes.load()
      << ", \"responses_per_s\": " << rps
      << ", \"p50_us\": " << totals.latency.percentile_micros(0.50)
      << ", \"p99_us\": " << totals.latency.percentile_micros(0.99)
      << ", \"p999_us\": " << totals.latency.percentile_micros(0.999)
      << ", \"mean_us\": " << totals.latency.mean_micros()
      << ", \"max_us\": " << totals.latency.max_micros();
  if (server_stats != nullptr) {
    out << ", \"server_frames_in\": " << server_stats->frames_in.load()
        << ", \"server_protocol_errors\": " << server_stats->protocol_errors.load()
        << ", \"server_read_pauses\": " << server_stats->pauses.read_pauses.load()
        << ", \"server_write_pauses\": " << server_stats->pauses.write_pauses.load()
        << ", \"server_dropped_responses\": " << server_stats->dropped_responses.load();
  }
  out << ", " << benchx::bench_stamp_fields() << "}\n]\n";
}

void print_summary(const LoadTotals& totals, const LoadReport& report) {
  const double rps =
      report.elapsed_s > 0
          ? static_cast<double>(totals.responses.load()) / report.elapsed_s
          : 0.0;
  std::printf(
      "connections=%zu elapsed=%.2fs requests=%llu responses=%llu ok=%llu "
      "errors=%llu (overloaded=%llu draining=%llu) mangled=%llu dropped=%llu "
      "writes=%llu\n"
      "throughput=%.0f resp/s latency p50=%lluus p99=%lluus p999=%lluus "
      "mean=%lluus max=%lluus\n",
      report.connected, report.elapsed_s,
      static_cast<unsigned long long>(totals.requests.load()),
      static_cast<unsigned long long>(totals.responses.load()),
      static_cast<unsigned long long>(totals.ok.load()),
      static_cast<unsigned long long>(totals.errors.load()),
      static_cast<unsigned long long>(totals.overloaded.load()),
      static_cast<unsigned long long>(totals.draining.load()),
      static_cast<unsigned long long>(totals.mangled.load()),
      static_cast<unsigned long long>(totals.dropped.load()),
      static_cast<unsigned long long>(totals.writes.load()), rps,
      static_cast<unsigned long long>(totals.latency.percentile_micros(0.50)),
      static_cast<unsigned long long>(totals.latency.percentile_micros(0.99)),
      static_cast<unsigned long long>(totals.latency.percentile_micros(0.999)),
      static_cast<unsigned long long>(totals.latency.mean_micros()),
      static_cast<unsigned long long>(totals.latency.max_micros()));
}

/// --gate: in-process server + full-scale load + hard pass/fail checks.
int run_gate(LoadConfig config) {
  constexpr std::size_t kPreload = 200;

  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig catalog_config;
  catalog_config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), catalog_config);
  workload::DocumentGenerator generator;
  for (std::size_t i = 0; i < kPreload; ++i) {
    catalog.ingest(generator.generate(i), "preload-" + std::to_string(i), "gate");
  }

  core::DispatcherConfig dispatch;
  dispatch.workers = 4;
  dispatch.max_queue = 256;
  core::ServiceDispatcher dispatcher(catalog, dispatch);

  net::ServerConfig server_config;
  server_config.event_threads = 2;
  net::CatalogServer server(dispatcher, server_config);
  server.start();

  config.host = "127.0.0.1";
  config.port = server.port();
  config.fetch_max = kPreload;
  raise_fd_limit(config.connections * 2 + 128);

  const RequestPools pools = build_pools();
  LoadTotals totals;
  const LoadReport report = run_load(config, pools, totals);
  server.drain();

  print_summary(totals, report);
  const net::ServerStats& stats = server.stats();
  std::printf("server: frames_in=%llu protocol_errors=%llu read_pauses=%llu "
              "write_pauses=%llu dropped_responses=%llu\n",
              static_cast<unsigned long long>(stats.frames_in.load()),
              static_cast<unsigned long long>(stats.protocol_errors.load()),
              static_cast<unsigned long long>(stats.pauses.read_pauses.load()),
              static_cast<unsigned long long>(stats.pauses.write_pauses.load()),
              static_cast<unsigned long long>(stats.dropped_responses.load()));
  if (config.json_path.empty()) config.json_path = "BENCH_net.json";
  write_json(config.json_path, config, totals, report, &stats);

  bool pass = true;
  const auto fail = [&pass](const char* what) {
    std::printf("GATE FAIL: %s\n", what);
    pass = false;
  };
  if (report.connected != config.connections) fail("not every connection established");
  if (totals.responses.load() != totals.requests.load()) {
    fail("responses != requests");
  }
  if (totals.mangled.load() != 0) fail("mangled frames");
  if (totals.dropped.load() != 0) fail("dropped requests");
  if (totals.errors.load() != 0) fail("error responses (saturation must be backpressure, not errors)");
  if (totals.writes.load() == 0) fail("no live-writer traffic");
  if (stats.protocol_errors.load() != 0) fail("server-side protocol errors");
  if (stats.dropped_responses.load() != 0) fail("server dropped responses");
  if (totals.responses.load() == 0) fail("no traffic at all");
  std::printf("GATE %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: catalog_load [--host H] [--port P] [--connections N]\n"
               "                    [--threads N] [--duration SECONDS] [--pipeline N]\n"
               "                    [--writer-every N] [--fetch-max N] [--json[=path]]\n"
               "       bench_net --gate [--connections N] [--duration SECONDS] ...\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  bool saw_connections = false;
  bool saw_duration = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--host") {
      config.host = value();
    } else if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(value().c_str()));
    } else if (arg == "--connections") {
      config.connections = static_cast<std::size_t>(std::atol(value().c_str()));
      saw_connections = true;
    } else if (arg == "--threads") {
      config.threads = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--duration") {
      config.duration_s = std::atof(value().c_str());
      saw_duration = true;
    } else if (arg == "--pipeline") {
      config.pipeline = static_cast<std::size_t>(std::atol(value().c_str()));
      if (config.pipeline == 0) config.pipeline = 1;
    } else if (arg == "--writer-every") {
      config.writer_every = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--fetch-max") {
      config.fetch_max = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--json") {
      config.json_path = "BENCH_net.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg == "--gate") {
      config.gate = true;
    } else {
      usage();
    }
  }

  if (config.gate) {
    if (!saw_connections) config.connections = 512;
    if (!saw_duration) config.duration_s = 3.0;
    return run_gate(config);
  }

  raise_fd_limit(config.connections + 128);
  const RequestPools pools = build_pools();
  LoadTotals totals;
  const LoadReport report = run_load(config, pools, totals);
  print_summary(totals, report);
  if (!config.json_path.empty()) {
    write_json(config.json_path, config, totals, report, nullptr);
  }
  return totals.mangled.load() == 0 && totals.connect_failures.load() == 0 ? 0 : 1;
}
