// bench_cache — repeated-query closed loop measuring the snapshot-keyed
// query cache through the full TCP front end.
//
// Two in-process servers run the IDENTICAL preloaded catalog and the
// identical read-only request mix (repeated queries + fetches; read-only so
// response bytes cannot legitimately differ between passes):
//
//   cold: cache disabled — every request runs the full parse → engine →
//         serialize pipeline on a dispatcher worker;
//   warm: cache enabled — one warmup pass fills the L2 segment, then the
//         measured pass is served from cached buffers (mostly inline on the
//         server's event loops, without even entering the dispatcher).
//
// Byte-identity is validated in-bench: for every distinct request the cold
// response, the warm first response, and the warm cached response must be
// the same bytes. With --gate (the CI cache-smoke job) the run fails unless
//   * warm p50 <= 0.2 x cold p50 (a cache that is not ~5x faster at the
//     median is not doing its job),
//   * L2 hit rate >= 90% over the measured pass,
//   * every byte-identity check passed.
// Writes BENCH_cache.json (override with --json=path).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_stamp.hpp"
#include "core/catalog.hpp"
#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace {

using namespace hxrc;
using Clock = std::chrono::steady_clock;

struct BenchConfig {
  std::size_t preload = 200;
  std::size_t distinct_queries = 32;
  std::size_t distinct_fetches = 16;
  std::size_t clients = 4;
  std::size_t requests_per_client = 2000;
  std::string json_path = "BENCH_cache.json";
  bool gate = false;
};

/// One server over one catalog; cache on or off is the only variable.
struct Instance {
  std::unique_ptr<core::MetadataCatalog> catalog;
  std::unique_ptr<core::ServiceDispatcher> dispatcher;
  std::unique_ptr<net::CatalogServer> server;
};

Instance start_instance(const BenchConfig& config, bool cache_enabled) {
  static xml::Schema schema = workload::lead_schema();
  core::CatalogConfig catalog_config;
  catalog_config.shred.auto_define_dynamic = true;
  catalog_config.cache.enabled = cache_enabled;

  Instance inst;
  inst.catalog = std::make_unique<core::MetadataCatalog>(
      schema, workload::lead_annotations(), catalog_config);
  workload::DocumentGenerator generator;
  for (std::size_t i = 0; i < config.preload; ++i) {
    inst.catalog->ingest(generator.generate(i), "preload-" + std::to_string(i), "bench");
  }

  core::DispatcherConfig dispatch;
  dispatch.workers = 4;
  inst.dispatcher = std::make_unique<core::ServiceDispatcher>(*inst.catalog, dispatch);

  net::ServerConfig server_config;
  server_config.event_threads = 2;
  inst.server = std::make_unique<net::CatalogServer>(*inst.dispatcher, server_config);
  inst.catalog->set_server_pauses(&inst.server->stats().pauses);
  inst.server->start();
  return inst;
}

std::vector<std::string> build_requests(const BenchConfig& config) {
  std::vector<std::string> requests;
  workload::QueryGenerator query_gen;
  for (std::uint64_t q = 0; q < config.distinct_queries; ++q) {
    requests.push_back(core::query_to_xml(query_gen.generate(q)));
  }
  for (std::size_t f = 0; f < config.distinct_fetches; ++f) {
    requests.push_back("<catalogRequest type=\"fetch\" version=\"1\" objectID=\"" +
                       std::to_string(f % config.preload) + "\"/>");
  }
  return requests;
}

struct PhaseResult {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
  util::LatencyHistogram latency;
};

/// Closed loop: each client thread cycles through the shared request pool
/// until it has issued its quota, recording per-call latency.
void run_phase(std::uint16_t port, const std::vector<std::string>& requests,
               const BenchConfig& config, PhaseResult& result) {
  std::atomic<std::uint64_t> errors{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      net::BlockingClient client("127.0.0.1", port);
      for (std::size_t i = 0; i < config.requests_per_client; ++i) {
        const std::string& request = requests[(c * 13 + i) % requests.size()];
        const Clock::time_point sent = Clock::now();
        const std::string response = client.call(request);
        const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - sent);
        result.latency.record(static_cast<std::uint64_t>(micros.count()));
        if (response.find("status=\"ok\"") == std::string::npos) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  result.responses = config.clients * config.requests_per_client;
  result.errors = errors.load();
}

void print_phase(const char* name, const PhaseResult& result) {
  const double rps = result.elapsed_s > 0
                         ? static_cast<double>(result.responses) / result.elapsed_s
                         : 0.0;
  std::printf("%s: responses=%llu errors=%llu elapsed=%.2fs throughput=%.0f resp/s "
              "p50=%lluus p99=%lluus mean=%lluus\n",
              name, static_cast<unsigned long long>(result.responses),
              static_cast<unsigned long long>(result.errors), result.elapsed_s, rps,
              static_cast<unsigned long long>(result.latency.percentile_micros(0.50)),
              static_cast<unsigned long long>(result.latency.percentile_micros(0.99)),
              static_cast<unsigned long long>(result.latency.mean_micros()));
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_cache [--gate] [--clients N] [--requests N]\n"
               "                   [--preload N] [--json=path]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--gate") {
      config.gate = true;
    } else if (arg == "--clients") {
      config.clients = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--requests") {
      config.requests_per_client = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--preload") {
      config.preload = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else {
      usage();
    }
  }

  const std::vector<std::string> requests = build_requests(config);

  Instance cold = start_instance(config, /*cache_enabled=*/false);
  Instance warm = start_instance(config, /*cache_enabled=*/true);

  // Byte-identity oracle: per distinct request, cold response == warm first
  // response (cache miss + insert) == warm second response (cache hit).
  std::size_t identity_failures = 0;
  {
    net::BlockingClient cold_client("127.0.0.1", cold.server->port());
    net::BlockingClient warm_client("127.0.0.1", warm.server->port());
    for (const std::string& request : requests) {
      const std::string oracle = cold_client.call(request);
      const std::string miss = warm_client.call(request);
      const std::string hit = warm_client.call(request);
      if (miss != oracle || hit != oracle) {
        ++identity_failures;
        std::printf("BYTE MISMATCH for request: %.80s...\n", request.c_str());
      }
    }
  }

  // Measured passes. The warm instance is already warmed by the identity
  // sweep (every distinct request inserted); measure steady state.
  PhaseResult cold_result;
  run_phase(cold.server->port(), requests, config, cold_result);
  PhaseResult warm_result;
  run_phase(warm.server->port(), requests, config, warm_result);

  print_phase("cold (cache off)", cold_result);
  print_phase("warm (cache on) ", warm_result);

  const util::CacheMetrics& cache = warm.catalog->cache_metrics();
  const std::uint64_t l2_hits = cache.l2.hits.load();
  const std::uint64_t l2_misses = cache.l2.misses.load();
  const double hit_rate =
      l2_hits + l2_misses > 0
          ? static_cast<double>(l2_hits) / static_cast<double>(l2_hits + l2_misses)
          : 0.0;
  std::printf("cache: l2_hits=%llu l2_misses=%llu hit_rate=%.3f inline_served=%llu "
              "l1_hits=%llu bypass=%llu\n",
              static_cast<unsigned long long>(l2_hits),
              static_cast<unsigned long long>(l2_misses), hit_rate,
              static_cast<unsigned long long>(cache.inline_served.load()),
              static_cast<unsigned long long>(cache.l1.hits.load()),
              static_cast<unsigned long long>(cache.bypass.load()));

  const std::uint64_t cold_p50 =
      std::max<std::uint64_t>(1, cold_result.latency.percentile_micros(0.50));
  const std::uint64_t warm_p50 = warm_result.latency.percentile_micros(0.50);
  const double speedup = static_cast<double>(cold_p50) /
                         static_cast<double>(std::max<std::uint64_t>(1, warm_p50));
  std::printf("p50 speedup: %.1fx (cold=%lluus warm=%lluus)\n", speedup,
              static_cast<unsigned long long>(cold_p50),
              static_cast<unsigned long long>(warm_p50));

  {
    std::ofstream out(config.json_path);
    out << "[\n  {\"name\": \"cache/closed_loop/" << config.clients << "x"
        << config.requests_per_client << "\""
        << ", \"distinct_requests\": " << requests.size()
        << ", \"cold_responses\": " << cold_result.responses
        << ", \"cold_p50_us\": " << cold_result.latency.percentile_micros(0.50)
        << ", \"cold_p99_us\": " << cold_result.latency.percentile_micros(0.99)
        << ", \"cold_mean_us\": " << cold_result.latency.mean_micros()
        << ", \"warm_responses\": " << warm_result.responses
        << ", \"warm_p50_us\": " << warm_result.latency.percentile_micros(0.50)
        << ", \"warm_p99_us\": " << warm_result.latency.percentile_micros(0.99)
        << ", \"warm_mean_us\": " << warm_result.latency.mean_micros()
        << ", \"p50_speedup\": " << speedup
        << ", \"l2_hits\": " << l2_hits
        << ", \"l2_misses\": " << l2_misses
        << ", \"hit_rate\": " << hit_rate
        << ", \"inline_served\": " << cache.inline_served.load()
        << ", \"l1_hits\": " << cache.l1.hits.load()
        << ", \"identity_failures\": " << identity_failures
        << ", " << hxrc::benchx::bench_stamp_fields()
        << "}\n]\n";
  }

  warm.server->drain();
  cold.server->drain();

  if (!config.gate) return identity_failures == 0 ? 0 : 1;

  bool pass = true;
  const auto fail = [&pass](const char* what) {
    std::printf("GATE FAIL: %s\n", what);
    pass = false;
  };
  if (identity_failures != 0) fail("cached responses not byte-identical");
  if (cold_result.errors != 0 || warm_result.errors != 0) fail("error responses");
  if (warm_p50 > cold_p50 / 5) fail("warm p50 > 0.2x cold p50");
  if (hit_rate < 0.90) fail("L2 hit rate below 90%");
  if (cache.inline_served.load() == 0) fail("no responses served inline on event loops");
  std::printf("GATE %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
