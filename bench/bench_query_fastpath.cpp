// E4 — ablation of the §4 query simplification ("if the attributes ... do
// not have multiple instances ... or there are no sub-attributes ... the
// query can be significantly simplified").
//
// Runs the same single-instance structural queries with the fast path
// enabled and disabled. Expectation: the fast path wins by skipping
// per-instance grouping, with the gap growing with corpus size.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;

core::MetadataCatalog& catalog_for(std::size_t n, bool fastpath) {
  static std::map<std::pair<std::size_t, bool>, std::unique_ptr<core::MetadataCatalog>>
      cache;
  static xml::Schema schema = workload::lead_schema();
  const auto key = std::make_pair(n, fastpath);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::CatalogConfig config = benchx::auto_define_config();
    config.engine.enable_fastpath = fastpath;
    auto catalog = std::make_unique<core::MetadataCatalog>(
        schema, workload::lead_annotations(), config);
    for (const auto& doc : benchx::corpus(n)) catalog->ingest(doc, "d", "bench");
    it = cache.emplace(key, std::move(catalog)).first;
  }
  return *it->second;
}

core::ObjectQuery status_query() {
  core::ObjectQuery query;
  core::AttrQuery status("status");
  status.add_element("progress", rel::Value("Complete"), core::CompareOp::kEq);
  query.add_attribute(std::move(status));
  core::AttrQuery citation("citation");
  citation.add_element("origin", rel::Value("LEAD"), core::CompareOp::kEq);
  query.add_attribute(std::move(citation));
  return query;
}

void fastpath_bench(benchmark::State& state, bool fastpath) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::MetadataCatalog& catalog = catalog_for(n, fastpath);
  const core::ObjectQuery query = status_query();
  std::size_t hits = 0;
  std::size_t runs = 0;
  core::QueryPlanInfo info;
  for (auto _ : state) {
    hits = catalog.query(query, &info).size();
    benchmark::DoNotOptimize(hits);
    ++runs;
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["fast"] = info.fast_path ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (const bool fastpath : {true, false}) {
    const std::string name =
        std::string("E4/StructuralQuery/") + (fastpath ? "fastpath" : "general");
    for (const long n : {200L, 1000L, 4000L}) {
      benchmark::RegisterBenchmark(name.c_str(), fastpath_bench, fastpath)
          ->Arg(n)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  return hxrc::benchx::run_benchmarks(argc, argv, "BENCH_fastpath.json");
}
