// E1 — ingest and mixed-workload throughput across the four backends.
//
// Paper anchor (§1): the group's prior benchmarking found a relational
// store "far inferior ... in terms of throughput" backwards — i.e. the
// native-XML/document store (modelled by the `clob` backend) loses badly on
// a catalog workload. Expectation: hybrid/inlining/edge ingest within a
// small factor of each other (clob ingest is cheapest — it only copies),
// but on the mixed ingest+query workload the clob backend collapses because
// every query re-parses the corpus.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;
using baselines::BackendKind;

constexpr BackendKind kKinds[] = {BackendKind::kHybrid, BackendKind::kInlining,
                                  BackendKind::kEdge, BackendKind::kClob};

void ingest_bench(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& docs = benchx::corpus(n);
  std::size_t total_docs = 0;
  for (auto _ : state) {
    auto backend = baselines::make_backend(kind, benchx::lead_partition());
    for (const auto& doc : docs) backend->ingest(doc, "bench");
    total_docs += docs.size();
    benchmark::DoNotOptimize(backend->object_count());
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total_docs), benchmark::Counter::kIsRate);
}

void mixed_bench(benchmark::State& state, BackendKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& docs = benchx::corpus(n);
  workload::QueryGenerator queries;
  std::size_t ops = 0;
  for (auto _ : state) {
    auto backend = baselines::make_backend(kind, benchx::lead_partition());
    for (const auto& doc : docs) backend->ingest(doc, "bench");
    std::size_t hits = 0;
    for (std::uint64_t q = 0; q < 20; ++q) {
      hits += backend->query(queries.generate(q)).size();
    }
    benchmark::DoNotOptimize(hits);
    ops += docs.size() + 20;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (const BackendKind kind : kKinds) {
    const std::string name = std::string(baselines::to_string(kind));
    for (const long n : {100L, 400L}) {
      benchmark::RegisterBenchmark(("E1/Ingest/" + name).c_str(), ingest_bench, kind)
          ->Arg(n)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(("E1/Mixed/" + name).c_str(), mixed_bench, kind)
        ->Arg(200)
        ->Unit(benchmark::kMillisecond);
  }
  return hxrc::benchx::run_benchmarks(argc, argv, "BENCH_ingest.json");
}
