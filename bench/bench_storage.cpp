// E10 — storage footprint and CLOB-granularity ablation (§6).
//
// Prints two tables (this bench measures space, not time):
//
//   1. bytes/document across the four backends (total, CLOB payload,
//      relational rows);
//   2. CLOB granularity ablation: per-attribute CLOBs (the hybrid choice)
//      vs one CLOB per document (DB2 XML Column / Oracle default [21][22])
//      vs a CLOB for EVERY interior element (Balmin/Papakonstantinou [15]).
//      §6 argues the hybrid sits near the per-document cost because at most
//      one metadata attribute lies on any root-to-leaf path, while [15]
//      multiplies payload by document depth.
#include <cstdio>

#include "bench_common.hpp"
#include "xml/writer.hpp"

namespace {

using namespace hxrc;
using baselines::BackendKind;

/// Sum of serialized sizes of every interior element except the root
/// ([15]'s granularity).
std::size_t per_element_clob_bytes(const xml::Node& node, bool is_root) {
  std::size_t bytes = 0;
  const bool interior = !node.is_leaf_element();
  if (!is_root && interior) bytes += xml::write(node).size();
  for (const auto& child : node.children()) {
    if (child->is_element()) bytes += per_element_clob_bytes(*child, false);
  }
  return bytes;
}

}  // namespace

int main() {
  constexpr std::size_t kCorpus = 500;
  const auto& docs = benchx::corpus(kCorpus);

  std::printf("E10 storage footprint, %zu generated LEAD documents\n\n", kCorpus);
  std::printf("%-10s %14s %14s\n", "backend", "bytes/doc", "total[KiB]");
  for (const BackendKind kind : {BackendKind::kHybrid, BackendKind::kInlining,
                                 BackendKind::kEdge, BackendKind::kClob}) {
    auto backend = baselines::make_backend(kind, benchx::lead_partition());
    for (const auto& doc : docs) backend->ingest(doc, "bench");
    const std::size_t bytes = backend->storage_bytes();
    std::printf("%-10s %14zu %14zu\n", backend->name().c_str(), bytes / kCorpus,
                bytes / 1024);
  }

  // CLOB granularity ablation.
  std::size_t per_document = 0;
  std::size_t per_element = 0;
  for (const auto& doc : docs) {
    per_document += xml::write(doc).size();
    per_element += per_element_clob_bytes(*doc.root, true);
  }
  // The hybrid's actual per-attribute CLOB payload.
  xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                benchx::auto_define_config());
  for (const auto& doc : docs) catalog.ingest(doc, "d", "bench");
  const std::size_t per_attribute = catalog.total_stats().clob_bytes;

  std::printf("\nCLOB granularity ablation (payload bytes per document):\n");
  std::printf("%-34s %14zu\n", "per-attribute CLOBs (hybrid)", per_attribute / kCorpus);
  std::printf("%-34s %14zu\n", "per-document CLOB (DB2/Oracle)", per_document / kCorpus);
  std::printf("%-34s %14zu\n", "per-interior-element CLOBs [15]", per_element / kCorpus);
  std::printf("\nhybrid overhead vs whole-document: %.2fx;  [15] overhead: %.2fx\n",
              static_cast<double>(per_attribute) / static_cast<double>(per_document),
              static_cast<double>(per_element) / static_cast<double>(per_document));
  return 0;
}
