// Shared fixtures for the experiment benches (see DESIGN.md §4).
//
// Benches compare the hybrid catalog against the inlining / edge / CLOB
// baselines on identical generated corpora. Heavy setup (corpus generation,
// backend ingest) is cached across benchmark iterations keyed by the
// benchmark arguments.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "baselines/backend.hpp"
#include "core/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::benchx {

/// The partitioned LEAD schema (static: Partition keeps a schema pointer).
inline const core::Partition& lead_partition() {
  static const xml::Schema schema = workload::lead_schema();
  static const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());
  return partition;
}

/// Cached deterministic corpora keyed by (size, config signature).
inline const std::vector<xml::Document>& corpus(std::size_t size,
                                                const workload::GeneratorConfig& config = {}) {
  struct KeyedCorpus {
    workload::GeneratorConfig config;
    std::size_t size;
    std::vector<xml::Document> docs;
  };
  static std::vector<KeyedCorpus> cache;
  for (const auto& entry : cache) {
    if (entry.size == size && entry.config.seed == config.seed &&
        entry.config.params_max == config.params_max &&
        entry.config.themes_max == config.themes_max &&
        entry.config.value_cardinality == config.value_cardinality &&
        entry.config.sub_attr_probability == config.sub_attr_probability &&
        entry.config.max_nesting == config.max_nesting) {
      return entry.docs;
    }
  }
  workload::DocumentGenerator generator(config);
  cache.push_back(KeyedCorpus{config, size, generator.corpus(size)});
  return cache.back().docs;
}

/// A backend pre-loaded with `size` documents, cached per (kind, size).
inline baselines::MetadataBackend& loaded_backend(baselines::BackendKind kind,
                                                  std::size_t size) {
  static std::map<std::pair<int, std::size_t>,
                  std::unique_ptr<baselines::MetadataBackend>>
      cache;
  const auto key = std::make_pair(static_cast<int>(kind), size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto backend = baselines::make_backend(kind, lead_partition());
    for (const auto& doc : corpus(size)) backend->ingest(doc, "bench");
    it = cache.emplace(key, std::move(backend)).first;
  }
  return *it->second;
}

/// Registers every (group, model, parameter) combination the generator can
/// emit, so catalogs can ingest without auto-definition (parallel ingest).
inline void register_all_dynamic(core::MetadataCatalog& catalog) {
  static constexpr const char* kSubGroups[] = {"grid-stretching", "damping", "advection",
                                               "boundary", "filtering"};
  for (const char* model : workload::model_names()) {
    for (const char* group : workload::grid_group_names()) {
      std::vector<core::DynamicElementSpec> elements;
      for (const char* param : workload::parameter_names()) {
        elements.push_back(
            core::DynamicElementSpec{param, xml::LeafType::kDouble, model});
      }
      const core::AttrDefId top =
          catalog.define_dynamic_attribute(group, model, elements);
      for (const char* sub_group : kSubGroups) {
        const core::AttrDefId sub =
            catalog.define_dynamic_sub_attribute(top, sub_group, model, elements);
        // Nested sub-groups (depth 2).
        for (const char* sub_sub : kSubGroups) {
          catalog.define_dynamic_sub_attribute(sub, sub_sub, model, elements);
        }
      }
    }
  }
}

inline core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

}  // namespace hxrc::benchx
