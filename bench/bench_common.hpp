// Shared fixtures for the experiment benches (see DESIGN.md §4).
//
// Benches compare the hybrid catalog against the inlining / edge / CLOB
// baselines on identical generated corpora. Heavy setup (corpus generation,
// backend ingest) is cached across benchmark iterations keyed by the
// benchmark arguments.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/backend.hpp"
#include "bench_stamp.hpp"
#include "core/catalog.hpp"
#include "util/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"

namespace hxrc::benchx {

/// The partitioned LEAD schema (static: Partition keeps a schema pointer).
inline const core::Partition& lead_partition() {
  static const xml::Schema schema = workload::lead_schema();
  static const core::Partition partition =
      core::Partition::build(schema, workload::lead_annotations());
  return partition;
}

/// Cached deterministic corpora keyed by (size, config signature).
inline const std::vector<xml::Document>& corpus(std::size_t size,
                                                const workload::GeneratorConfig& config = {}) {
  struct KeyedCorpus {
    workload::GeneratorConfig config;
    std::size_t size;
    std::vector<xml::Document> docs;
  };
  static std::vector<KeyedCorpus> cache;
  for (const auto& entry : cache) {
    if (entry.size == size && entry.config.seed == config.seed &&
        entry.config.params_max == config.params_max &&
        entry.config.themes_max == config.themes_max &&
        entry.config.value_cardinality == config.value_cardinality &&
        entry.config.sub_attr_probability == config.sub_attr_probability &&
        entry.config.max_nesting == config.max_nesting) {
      return entry.docs;
    }
  }
  workload::DocumentGenerator generator(config);
  cache.push_back(KeyedCorpus{config, size, generator.corpus(size)});
  return cache.back().docs;
}

/// A backend pre-loaded with `size` documents, cached per (kind, size).
inline baselines::MetadataBackend& loaded_backend(baselines::BackendKind kind,
                                                  std::size_t size) {
  static std::map<std::pair<int, std::size_t>,
                  std::unique_ptr<baselines::MetadataBackend>>
      cache;
  const auto key = std::make_pair(static_cast<int>(kind), size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto backend = baselines::make_backend(kind, lead_partition());
    for (const auto& doc : corpus(size)) backend->ingest(doc, "bench");
    it = cache.emplace(key, std::move(backend)).first;
  }
  return *it->second;
}

/// Registers every (group, model, parameter) combination the generator can
/// emit, so catalogs can ingest without auto-definition (parallel ingest).
inline void register_all_dynamic(core::MetadataCatalog& catalog) {
  static constexpr const char* kSubGroups[] = {"grid-stretching", "damping", "advection",
                                               "boundary", "filtering"};
  for (const char* model : workload::model_names()) {
    for (const char* group : workload::grid_group_names()) {
      std::vector<core::DynamicElementSpec> elements;
      for (const char* param : workload::parameter_names()) {
        elements.push_back(
            core::DynamicElementSpec{param, xml::LeafType::kDouble, model});
      }
      const core::AttrDefId top =
          catalog.define_dynamic_attribute(group, model, elements);
      for (const char* sub_group : kSubGroups) {
        const core::AttrDefId sub =
            catalog.define_dynamic_sub_attribute(top, sub_group, model, elements);
        // Nested sub-groups (depth 2).
        for (const char* sub_sub : kSubGroups) {
          catalog.define_dynamic_sub_attribute(sub, sub_sub, model, elements);
        }
      }
    }
  }
}

inline core::CatalogConfig auto_define_config() {
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  return config;
}

/// Display reporter that mirrors the normal console output and also collects
/// one record per run, written as a JSON array when the run finishes. Used
/// as the *display* reporter so no --benchmark_out flag is required.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      Record record{run.benchmark_name(), corpus_size(run.benchmark_name()),
                    run.GetAdjustedRealTime(), {}};
      // User counters arrive already finalized (rates divided by elapsed
      // time), so they can be dumped verbatim.
      for (const auto& [name, counter] : run.counters) {
        record.counters.emplace_back(name, static_cast<double>(counter));
      }
      // Process-wide peak RSS at run completion, and its per-object share
      // for corpus-sized runs — a memory check every bench gets for free.
      const auto rss = static_cast<double>(util::peak_rss_bytes());
      record.counters.emplace_back("peak_rss_bytes", rss);
      if (record.corpus_size > 0) {
        record.counters.emplace_back(
            "rss_bytes_per_object", rss / static_cast<double>(record.corpus_size));
      }
      records_.push_back(std::move(record));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream out(path_);
    // Leading provenance record (name "_meta") so every BENCH_*.json carries
    // the commit, build type, and run time it was measured from.
    out << "[\n  {\"name\": \"_meta\", " << bench_stamp_fields()
        << (records_.empty() ? "}\n" : "},\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "  {\"name\": \"" << escaped(r.name) << "\", \"corpus_size\": " << r.corpus_size
          << ", \"micros\": " << r.micros;
      for (const auto& [name, value] : r.counters) {
        out << ", \"" << escaped(name) << "\": " << value;
      }
      out << (i + 1 < records_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
  }

 private:
  struct Record {
    std::string name;
    long corpus_size;
    double micros;  // benches register with kMicrosecond
    std::vector<std::pair<std::string, double>> counters;
  };

  /// Last all-digit "/N/" segment, 0 when the name carries none. Scans
  /// right-to-left so decorations Google Benchmark appends after the Arg —
  /// "/iterations:40", "/manual_time", "/real_time" — are skipped.
  static long corpus_size(const std::string& name) {
    const std::string_view view(name);
    std::size_t end = view.size();
    while (end != 0) {
      const std::size_t slash = view.rfind('/', end - 1);
      if (slash == std::string::npos) return 0;
      const std::string_view segment = view.substr(slash + 1, end - slash - 1);
      long size = 0;
      bool digits = !segment.empty();
      for (const char c : segment) {
        if (c < '0' || c > '9') {
          digits = false;
          break;
        }
        size = size * 10 + (c - '0');
      }
      if (digits) return size;
      end = slash;
    }
    return 0;
  }

  static std::string escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

/// Shared bench main body: strips `--json[=path]` from argv (default path is
/// per-bench), then runs the registered benchmarks, teeing results into the
/// JSON file when requested.
inline int run_benchmarks(int argc, char** argv, const char* default_json_path) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_path = default_json_path;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    JsonTeeReporter reporter(std::move(json_path));
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace hxrc::benchx
