// E2 — shredding cost breakdown under the hybrid approach (Fig. 1/§3).
//
// Sweeps document "width" (dynamic parameters per document and keyword
// count) and reports per-document shred latency plus the rows/CLOB-bytes
// produced. Expectation: cost scales linearly with the number of metadata
// elements; the CLOB write adds a near-constant fraction (the hybrid tax
// over shred-only approaches) while buying tagger-free responses (E5).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;

void shred_bench(benchmark::State& state, int params_max, int themes_max) {
  workload::GeneratorConfig config;
  config.params_max = params_max;
  config.params_min = params_max / 2;
  config.themes_max = themes_max;
  const auto& docs = benchx::corpus(200, config);

  std::size_t elements = 0;
  std::size_t clob_bytes = 0;
  std::size_t total_docs = 0;
  for (auto _ : state) {
    xml::Schema schema = workload::lead_schema();
    core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                  benchx::auto_define_config());
    for (const auto& doc : docs) catalog.ingest(doc, "d", "bench");
    elements = catalog.total_stats().element_rows;
    clob_bytes = catalog.total_stats().clob_bytes;
    total_docs += docs.size();
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total_docs), benchmark::Counter::kIsRate);
  state.counters["elem_rows"] = static_cast<double>(elements) / docs.size();
  state.counters["clob_B/doc"] = static_cast<double>(clob_bytes) / docs.size();
}

// Ablation: shredding WITHOUT storing CLOBs (what a pure shredding system
// pays) to expose the hybrid's CLOB overhead at ingest.
void shred_no_clob_bench(benchmark::State& state, int params_max) {
  workload::GeneratorConfig config;
  config.params_max = params_max;
  config.params_min = params_max / 2;
  const auto& docs = benchx::corpus(200, config);

  std::size_t total_docs = 0;
  for (auto _ : state) {
    // Mark every attribute non-queryable = CLOB only... inverse: to isolate
    // shred-only cost we ingest normally and subtract nothing here; instead
    // compare against E2/Shred with the same args: the delta is the CLOB
    // write. This variant stores CLOBs but skips shredding (queryable=false).
    core::PartitionAnnotations annotations = workload::lead_annotations();
    for (auto& attribute : annotations.attributes) attribute.queryable = false;
    xml::Schema schema = workload::lead_schema();
    core::MetadataCatalog catalog(schema, std::move(annotations),
                                  benchx::auto_define_config());
    for (const auto& doc : docs) catalog.ingest(doc, "d", "bench");
    benchmark::DoNotOptimize(catalog.total_stats().clobs);
    total_docs += docs.size();
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total_docs), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (const int params : {4, 8, 16}) {
    benchmark::RegisterBenchmark("E2/Shred/params", shred_bench, params, 2)
        ->Arg(params)
        ->Unit(benchmark::kMillisecond);
  }
  for (const int themes : {1, 3, 6}) {
    benchmark::RegisterBenchmark("E2/Shred/themes", shred_bench, 8, themes)
        ->Arg(themes)
        ->Unit(benchmark::kMillisecond);
  }
  for (const int params : {4, 8, 16}) {
    benchmark::RegisterBenchmark("E2/ClobOnly/params", shred_no_clob_bench, params)
        ->Arg(params)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
