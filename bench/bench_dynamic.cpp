// E7 — dynamic-attribute validation on insert (§3).
//
// Two sweeps:
//   Lookup/D      definition-registry lookups with D registered definitions
//                 (hash lookups: expected near-flat in D);
//   Validate/k    ingest where k of the 6 generator groups are registered —
//                 unregistered dynamic content is stored CLOB-only and
//                 skipped by shredding, so ingest gets *cheaper* as the
//                 unknown fraction grows, while unshredded counters rise.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;

void lookup_bench(benchmark::State& state) {
  const auto defs = static_cast<std::size_t>(state.range(0));
  static xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations());
  for (std::size_t d = 0; d < defs; ++d) {
    catalog.define_dynamic_attribute("param-" + std::to_string(d), "ARPS",
                                     {{"value", xml::LeafType::kDouble, ""}});
  }
  std::size_t lookups = 0;
  std::size_t found = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::string name = "param-" + std::to_string((i * 131) % (defs * 2));
      if (catalog.registry().find_attribute(name, "ARPS", core::kNoAttr) != nullptr) {
        ++found;
      }
      ++lookups;
    }
  }
  benchmark::DoNotOptimize(found);
  state.counters["lookups/s"] =
      benchmark::Counter(static_cast<double>(lookups), benchmark::Counter::kIsRate);
}

void validate_bench(benchmark::State& state) {
  const auto registered_groups = static_cast<std::size_t>(state.range(0));
  static xml::Schema schema = workload::lead_schema();

  workload::GeneratorConfig config;
  config.sub_attr_probability = 0.0;  // keep definitions flat for this sweep
  const auto& docs = benchx::corpus(200, config);

  std::size_t total = 0;
  std::size_t unshredded = 0;
  for (auto _ : state) {
    core::MetadataCatalog catalog(schema, workload::lead_annotations());
    std::size_t g = 0;
    for (const char* group : workload::grid_group_names()) {
      if (g++ >= registered_groups) break;
      for (const char* model : workload::model_names()) {
        std::vector<core::DynamicElementSpec> elements;
        for (const char* param : workload::parameter_names()) {
          elements.push_back(
              core::DynamicElementSpec{param, xml::LeafType::kDouble, model});
        }
        catalog.define_dynamic_attribute(group, model, elements);
      }
    }
    for (const auto& doc : docs) catalog.ingest(doc, "d", "bench");
    total += docs.size();
    unshredded = catalog.total_stats().unshredded_dynamic;
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["clob_only"] = static_cast<double>(unshredded) / docs.size();
}

}  // namespace

int main(int argc, char** argv) {
  for (const long defs : {16L, 256L, 4096L}) {
    benchmark::RegisterBenchmark("E7/Lookup", lookup_bench)->Arg(defs);
  }
  for (const long groups : {0L, 3L, 6L}) {
    benchmark::RegisterBenchmark("E7/Validate/registered_groups", validate_bench)
        ->Arg(groups)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
