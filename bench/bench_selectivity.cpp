// E8 — query latency vs. selectivity for the count-based pipeline (§4).
//
// The corpus value cardinality controls how many documents match an
// equality predicate (cardinality c => roughly corpus/c candidate hits per
// parameter value). Expectation: hybrid latency tracks the number of
// matching element rows (index probe + grouping), while the clob baseline
// is flat — and high — because it always parses everything; the edge
// baseline sits between, paying path verification per candidate.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;
using baselines::BackendKind;

constexpr std::size_t kCorpus = 1000;

baselines::MetadataBackend& backend_for(BackendKind kind, int cardinality) {
  static std::map<std::pair<int, int>, std::unique_ptr<baselines::MetadataBackend>>
      cache;
  const auto key = std::make_pair(static_cast<int>(kind), cardinality);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::GeneratorConfig config;
    config.value_cardinality = cardinality;
    auto backend = baselines::make_backend(kind, benchx::lead_partition());
    for (const auto& doc : benchx::corpus(kCorpus, config)) {
      backend->ingest(doc, "bench");
    }
    it = cache.emplace(key, std::move(backend)).first;
  }
  return *it->second;
}

void selectivity_bench(benchmark::State& state, BackendKind kind) {
  const int cardinality = static_cast<int>(state.range(0));
  baselines::MetadataBackend& backend = backend_for(kind, cardinality);
  const core::ObjectQuery query = workload::dynamic_param_query(
      "grid", "ARPS", "dx", workload::parameter_value("dx", 0));
  std::size_t hits = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    hits = backend.query(query).size();
    benchmark::DoNotOptimize(hits);
    ++runs;
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["selectivity%"] = 100.0 * static_cast<double>(hits) / kCorpus;
}

}  // namespace

int main(int argc, char** argv) {
  for (const BackendKind kind :
       {BackendKind::kHybrid, BackendKind::kEdge, BackendKind::kClob}) {
    const std::string name =
        "E8/Selectivity/" + std::string(baselines::to_string(kind));
    for (const long cardinality : {2L, 8L, 32L}) {
      benchmark::RegisterBenchmark(name.c_str(), selectivity_bench, kind)
          ->Arg(cardinality)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
