// E9/E11 — concurrent catalog operation (hpc-parallel substrate).
//
// ParallelIngest: documents are shredded into per-thread staging databases
// and merged once (no locks on the hot path); expectation: near-linear
// speedup until the single-threaded merge dominates.
// ConcurrentQuery: read-only query throughput with T worker threads over a
// shared catalog; expectation: near-linear (tables are immutable during
// reads).
// MixedReadWrite (E11): the service scenario the MVCC catalog exists for —
// ONE background writer continuously ingesting while T closed-loop reader
// clients each run query → think → query against the same catalog. Clients
// model remote grid users (AMGA-style multi-client measurement): each
// carries a fixed think time (network RTT + client processing) between
// requests, so aggregate throughput grows with the number of in-flight
// clients until the server saturates. Under the old shared_mutex
// discipline every commit stalled the whole read side; with MVCC snapshot
// reads each query pins an epoch and runs lock-free, so read throughput
// must stay near-linear with a live writer. Per-request latency is
// recorded into a histogram and reported as p50/p99/p999 — tail latency is
// where writer-induced stalls would show. ReadOnlyScaling is the
// zero-writer control: the same closed loop without the background
// ingester, isolating reader-reader interference. Run with
// `--json=BENCH_concurrent.json --benchmark_filter=E11` to emit the
// committed results.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hxrc;

void parallel_ingest_bench(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  workload::GeneratorConfig config;
  const auto& docs = benchx::corpus(400, config);
  static xml::Schema schema = workload::lead_schema();

  std::size_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::MetadataCatalog catalog(schema, workload::lead_annotations());
    benchx::register_all_dynamic(catalog);
    util::ThreadPool pool(threads);
    state.ResumeTiming();

    catalog.ingest_parallel(pool, docs, "bench");
    total += docs.size();
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

void concurrent_query_bench(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  baselines::MetadataBackend& backend =
      benchx::loaded_backend(baselines::BackendKind::kHybrid, 1000);

  // Pre-generate a query batch.
  workload::QueryGenerator generator;
  std::vector<core::ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 64; ++q) queries.push_back(generator.generate(q));

  util::ThreadPool pool(threads);
  std::size_t total = 0;
  for (auto _ : state) {
    std::atomic<std::size_t> hits{0};
    util::parallel_for(pool, 0, queries.size(), [&](std::size_t i) {
      hits.fetch_add(backend.query(queries[i]).size(), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(hits.load());
    total += queries.size();
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

// ---- E11: mixed read/write over the shared-lock catalog ----

/// Per-client think time: the gap a remote grid client spends off the
/// catalog between requests (network round trip + client-side processing).
constexpr auto kClientThink = std::chrono::milliseconds(5);
/// Writer pacing: steady metadata arrival, not a tight ingest spin.
constexpr auto kWriterGap = std::chrono::milliseconds(2);
constexpr std::size_t kPreload = 500;
constexpr int kQueriesPerClientPerIter = 16;

void closed_loop_bench(benchmark::State& state, bool with_writer) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  static xml::Schema schema = workload::lead_schema();
  const auto& docs = benchx::corpus(kPreload + 200);

  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                benchx::auto_define_config());
  for (std::size_t i = 0; i < kPreload; ++i) {
    catalog.ingest(docs[i], "preload", "bench");
  }

  workload::QueryGenerator generator;
  std::vector<core::ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 32; ++q) queries.push_back(generator.generate(q));

  // Background writer: ingests for the whole lifetime of the benchmark
  // run, cycling through the spare corpus tail. Every ingest takes the
  // exclusive commit lock, publishes a new snapshot, and retires the old
  // one — MVCC readers must never notice.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> writes{0};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        catalog.ingest(docs[kPreload + (i++ % 200)], "live", "writer");
        writes.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(kWriterGap);
      }
    });
  }

  // Per-request service latency (think time excluded): the histogram is
  // lock-free, so recording from every client adds no synchronization of
  // its own.
  util::LatencyHistogram latency;
  util::ThreadPool pool(clients);
  std::size_t total_queries = 0;
  std::atomic<std::size_t> total_hits{0};
  for (auto _ : state) {
    util::parallel_for(pool, 0, clients, [&](std::size_t c) {
      for (int i = 0; i < kQueriesPerClientPerIter; ++i) {
        const auto& q =
            queries[(c * kQueriesPerClientPerIter + static_cast<std::size_t>(i)) %
                    queries.size()];
        const auto start = std::chrono::steady_clock::now();
        total_hits.fetch_add(catalog.query(q).size(), std::memory_order_relaxed);
        latency.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        std::this_thread::sleep_for(kClientThink);
      }
    });
    total_queries += clients * kQueriesPerClientPerIter;
  }
  if (with_writer) {
    stop.store(true, std::memory_order_release);
    writer.join();
  }

  benchmark::DoNotOptimize(total_hits.load());
  state.counters["queries/s"] = benchmark::Counter(static_cast<double>(total_queries),
                                                   benchmark::Counter::kIsRate);
  state.counters["writes"] = benchmark::Counter(static_cast<double>(writes.load()));
  state.counters["catalog_version"] =
      benchmark::Counter(static_cast<double>(catalog.version()));
  state.counters["p50_us"] =
      benchmark::Counter(static_cast<double>(latency.percentile_micros(0.50)));
  state.counters["p99_us"] =
      benchmark::Counter(static_cast<double>(latency.percentile_micros(0.99)));
  state.counters["p999_us"] =
      benchmark::Counter(static_cast<double>(latency.percentile_micros(0.999)));
  state.counters["mean_us"] = benchmark::Counter(static_cast<double>(latency.mean_micros()));
  const util::MvccStats mvcc = catalog.mvcc_stats();
  state.counters["reclamations"] = benchmark::Counter(static_cast<double>(mvcc.reclamations));
}

void mixed_read_write_bench(benchmark::State& state) {
  closed_loop_bench(state, /*with_writer=*/true);
}

void read_only_scaling_bench(benchmark::State& state) {
  closed_loop_bench(state, /*with_writer=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  for (const long threads : {1L, 2L, 4L, 8L}) {
    benchmark::RegisterBenchmark("E9/ParallelIngest/threads", parallel_ingest_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
    benchmark::RegisterBenchmark("E9/ConcurrentQuery/threads", concurrent_query_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
    benchmark::RegisterBenchmark("E11/MixedReadWrite/clients", mixed_read_write_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
    benchmark::RegisterBenchmark("E11/ReadOnlyScaling/clients", read_only_scaling_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  return hxrc::benchx::run_benchmarks(argc, argv, "BENCH_concurrent.json");
}
