// E9 — concurrent catalog operation (hpc-parallel substrate).
//
// ParallelIngest: documents are shredded into per-thread staging databases
// and merged once (no locks on the hot path); expectation: near-linear
// speedup until the single-threaded merge dominates.
// ConcurrentQuery: read-only query throughput with T worker threads over a
// shared catalog; expectation: near-linear (tables are immutable during
// reads).
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hxrc;

void parallel_ingest_bench(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  workload::GeneratorConfig config;
  const auto& docs = benchx::corpus(400, config);
  static xml::Schema schema = workload::lead_schema();

  std::size_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::MetadataCatalog catalog(schema, workload::lead_annotations());
    benchx::register_all_dynamic(catalog);
    util::ThreadPool pool(threads);
    state.ResumeTiming();

    catalog.ingest_parallel(pool, docs, "bench");
    total += docs.size();
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

void concurrent_query_bench(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  baselines::MetadataBackend& backend =
      benchx::loaded_backend(baselines::BackendKind::kHybrid, 1000);

  // Pre-generate a query batch.
  workload::QueryGenerator generator;
  std::vector<core::ObjectQuery> queries;
  for (std::uint64_t q = 0; q < 64; ++q) queries.push_back(generator.generate(q));

  util::ThreadPool pool(threads);
  std::size_t total = 0;
  for (auto _ : state) {
    std::atomic<std::size_t> hits{0};
    util::parallel_for(pool, 0, queries.size(), [&](std::size_t i) {
      hits.fetch_add(backend.query(queries[i]).size(), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(hits.load());
    total += queries.size();
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (const long threads : {1L, 2L, 4L, 8L}) {
    benchmark::RegisterBenchmark("E9/ParallelIngest/threads", parallel_ingest_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
    benchmark::RegisterBenchmark("E9/ConcurrentQuery/threads", concurrent_query_bench)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->MeasureProcessCPUTime()
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
