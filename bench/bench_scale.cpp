// Million-object scale bench (EXPERIMENTS.md E14) -> BENCH_scale.json.
//
// Standalone driver (not Google Benchmark): each tier is one streamed
// ingest of the scale corpus followed by exact-percentile query and fetch
// latency measurement — setup dominates and percentiles gate CI, so the
// iteration machinery of the other benches doesn't fit.
//
// Modes:
//   default                 10k + 100k tiers, compressed postings + CLOB
//                           paging, writes BENCH_scale.json
//   HXRC_SCALE_FULL=1       adds the 1m tier (local/manual; ~minutes)
//   HXRC_SCALE_BASELINE=1   uncompressed postings, no paging, writes
//                           BENCH_scale.pre.json (the pre/post baseline)
//   --gate                  CI smoke: 10k + 100k post and 100k pre
//                           in-process; exits nonzero when the
//                           bytes/object or p99 gates fail
//   --json=PATH             overrides the output path
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/catalog.hpp"
#include "core/storage.hpp"
#include "rel/ops.hpp"
#include "rel/postings.hpp"
#include "storage/clob_pager.hpp"
#include "util/metrics.hpp"
#include "workload/lead_schema.hpp"
#include "workload/scale.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TierResult {
  std::string name;
  std::size_t documents = 0;
  bool baseline = false;
  double ingest_seconds = 0;
  double ingest_docs_per_sec = 0;
  double approx_bytes = 0;
  double bytes_per_object = 0;
  double peak_rss_bytes = 0;
  double postings_bytes = 0;
  double postings_raw_bytes = 0;
  double postings_ratio = 1.0;
  double clob_resident_bytes = 0;
  double clob_spilled_bytes = 0;
  double clob_segments = 0;
  double query_p50_micros = 0;
  double query_p99_micros = 0;
  std::size_t queries = 0;
  double block_scan_rows_per_sec = 0;
  double fetch_p50_micros = 0;
  double fetch_p99_micros = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

TierResult run_tier(const hxrc::workload::ScaleTier& tier, bool baseline) {
  using namespace hxrc;

  rel::PostingList::set_compression(!baseline);

  xml::Schema schema = workload::lead_schema();
  core::CatalogConfig config;
  config.shred.auto_define_dynamic = true;
  core::MetadataCatalog catalog(schema, workload::lead_annotations(), config);

  const std::string page_path =
      std::string("bench_scale_") + tier.name + (baseline ? "_pre" : "") + ".pages";
  std::unique_ptr<storage::PagedClobFile> pager;
  if (!baseline) {
    pager = std::make_unique<storage::PagedClobFile>(page_path);
    catalog.database().clobs().enable_paging(pager.get(), 4u << 20, 8);
  }

  TierResult r;
  r.name = tier.name;
  r.documents = tier.documents;
  r.baseline = baseline;

  std::fprintf(stderr, "[scale] tier %s (%zu docs, %s)\n", tier.name,
               tier.documents, baseline ? "baseline" : "compressed+paged");
  const auto t0 = Clock::now();
  workload::ingest_scale_corpus(catalog, tier, [&](std::size_t done) {
    std::fprintf(stderr, "[scale]   %zu/%zu ingested (%.0f docs/s)\n", done,
                 tier.documents, static_cast<double>(done) / seconds_since(t0));
  });
  catalog.database().clobs().flush();
  r.ingest_seconds = seconds_since(t0);
  r.ingest_docs_per_sec = static_cast<double>(tier.documents) / r.ingest_seconds;

  const rel::Database& db = catalog.database();
  r.approx_bytes = static_cast<double>(db.approx_bytes());
  r.bytes_per_object = r.approx_bytes / static_cast<double>(tier.documents);
  r.peak_rss_bytes = static_cast<double>(util::peak_rss_bytes());
  const rel::IndexStats postings = db.postings_stats();
  r.postings_bytes = static_cast<double>(postings.postings_bytes);
  r.postings_raw_bytes = static_cast<double>(postings.postings_raw_bytes);
  if (postings.postings_raw_bytes > 0) {
    r.postings_ratio = r.postings_bytes / r.postings_raw_bytes;
  }
  r.clob_resident_bytes = static_cast<double>(db.clobs().resident_bytes());
  r.clob_spilled_bytes = static_cast<double>(db.clobs().spilled_bytes());
  r.clob_segments = pager ? static_cast<double>(pager->segment_count()) : 0;

  // Indexed point queries: per-query best-of-3 (minimum over repetitions),
  // percentiles over the minima. The gate compares p99 across tiers, so
  // each sample must reflect the query's algorithmic cost at that scale —
  // a single-shot p99 is dominated by scheduler/allocator jitter on the
  // one unlucky run and scales with nothing but noise.
  const auto queries = workload::scale_query_mix(tier, 256);
  std::size_t matched = 0;
  for (const auto& q : queries) matched += catalog.query(q).size();  // warmup
  std::vector<double> lat;
  lat.reserve(queries.size());
  for (const auto& q : queries) {
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto q0 = Clock::now();
      const auto ids = catalog.query(q);
      const double micros = seconds_since(q0) * 1e6;
      if (rep == 0) matched += ids.size();
      best = rep == 0 ? micros : std::min(best, micros);
    }
    lat.push_back(best);
  }
  std::sort(lat.begin(), lat.end());
  r.query_p50_micros = percentile(lat, 0.50);
  r.query_p99_micros = percentile(lat, 0.99);
  r.queries = queries.size();
  std::fprintf(stderr,
               "[scale]   %zu queries, avg %.1f matches, p50 %.1fus p99 %.1fus\n",
               queries.size(),
               static_cast<double>(matched) / (2.0 * static_cast<double>(queries.size())),
               r.query_p50_micros, r.query_p99_micros);

  // Non-indexed filter path: blocked scan over elem_data's numeric column.
  {
    const rel::Table& elems = db.require_table(core::kElemDataTable);
    const std::size_t col = elems.schema().require("value_num");
    const rel::ExprPtr pred = rel::gt(rel::col(col), rel::lit(rel::Value(1e12)));
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<rel::RowId> out;
      const auto s0 = Clock::now();
      rel::scan_ids(elems, *pred, out);
      const double rate = static_cast<double>(elems.row_count()) / seconds_since(s0);
      best = std::max(best, rate);
    }
    r.block_scan_rows_per_sec = best;
  }

  // Document reconstruction (the CLOB read path; cold reads page back in).
  {
    util::Prng rng(7);
    std::vector<double> fl;
    for (int i = 0; i < 200; ++i) {
      const auto id = static_cast<core::ObjectId>(
          rng.uniform(0, static_cast<std::int64_t>(tier.documents) - 1));
      const auto f0 = Clock::now();
      const xml::Document doc = catalog.fetch(id);
      fl.push_back(seconds_since(f0) * 1e6);
    }
    std::sort(fl.begin(), fl.end());
    r.fetch_p50_micros = percentile(fl, 0.50);
    r.fetch_p99_micros = percentile(fl, 0.99);
  }

  pager.reset();
  std::remove(page_path.c_str());
  return r;
}

void write_json(const std::string& path, const std::vector<TierResult>& results) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    out << "  {\"name\": \"scale/" << r.name << "\", \"corpus_size\": " << r.documents
        << ", \"mode\": \"" << (r.baseline ? "baseline" : "compressed") << '"'
        << ", \"ingest_seconds\": " << r.ingest_seconds
        << ", \"ingest_docs_per_sec\": " << r.ingest_docs_per_sec
        << ", \"approx_bytes\": " << r.approx_bytes
        << ", \"bytes_per_object\": " << r.bytes_per_object
        << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"postings_bytes\": " << r.postings_bytes
        << ", \"postings_raw_bytes\": " << r.postings_raw_bytes
        << ", \"postings_ratio\": " << r.postings_ratio
        << ", \"clob_resident_bytes\": " << r.clob_resident_bytes
        << ", \"clob_spilled_bytes\": " << r.clob_spilled_bytes
        << ", \"clob_segments\": " << r.clob_segments
        << ", \"queries\": " << r.queries
        << ", \"query_p50_micros\": " << r.query_p50_micros
        << ", \"query_p99_micros\": " << r.query_p99_micros
        << ", \"block_scan_rows_per_sec\": " << r.block_scan_rows_per_sec
        << ", \"fetch_p50_micros\": " << r.fetch_p50_micros
        << ", \"fetch_p99_micros\": " << r.fetch_p99_micros
        << (i + 1 < results.size() ? "},\n" : "}\n");
  }
  out << "]\n";
  std::fprintf(stderr, "[scale] wrote %s\n", path.c_str());
}

/// CI smoke gates at the 100k tier (the 1M acceptance gates live in
/// EXPERIMENTS.md E14 and run locally): compressed bytes/object must stay
/// under 70% of the uncompressed baseline, and the 100k p99 must stay
/// within 1.25x of the 10k p99 (with a 64us floor so a fast machine's
/// timer noise can't fail the ratio).
int run_gate() {
  using hxrc::workload::scale_tier;
  const TierResult small = run_tier(scale_tier("10k"), false);
  const TierResult post = run_tier(scale_tier("100k"), false);
  const TierResult pre = run_tier(scale_tier("100k"), true);

  bool ok = true;
  const double ratio = post.bytes_per_object / pre.bytes_per_object;
  std::fprintf(stderr, "[gate] bytes/object: post %.0f vs pre %.0f (ratio %.3f, limit 0.70)\n",
               post.bytes_per_object, pre.bytes_per_object, ratio);
  if (ratio > 0.70) {
    std::fprintf(stderr, "[gate] FAIL: compression+paging saves too little\n");
    ok = false;
  }
  const double p99_floor = std::max(small.query_p99_micros, 64.0);
  std::fprintf(stderr, "[gate] query p99: 100k %.1fus vs 10k %.1fus (limit %.1fus)\n",
               post.query_p99_micros, small.query_p99_micros, 1.25 * p99_floor);
  if (post.query_p99_micros > 1.25 * p99_floor) {
    std::fprintf(stderr, "[gate] FAIL: indexed query latency not scale-invariant\n");
    ok = false;
  }
  std::fprintf(stderr, "[gate] %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") gate = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  if (gate) return run_gate();

  const char* baseline_env = std::getenv("HXRC_SCALE_BASELINE");
  const bool baseline = baseline_env != nullptr && baseline_env[0] == '1';
  const char* full_env = std::getenv("HXRC_SCALE_FULL");
  const bool full = full_env != nullptr && full_env[0] == '1';
  if (json_path.empty()) {
    json_path = baseline ? "BENCH_scale.pre.json" : "BENCH_scale.json";
  }

  std::vector<TierResult> results;
  for (const auto& tier : hxrc::workload::scale_tiers()) {
    if (tier.documents >= 1'000'000 && !full) continue;
    results.push_back(run_tier(tier, baseline));
  }
  write_json(json_path, results);
  return 0;
}
