// bench_fed — federated scatter-gather closed loop through the full TCP
// stack, against a single-node baseline serving the identical corpus.
//
// Three topologies run in-process, every hop over real sockets:
//
//   single: one catalog behind one net::CatalogServer — the baseline;
//   fed2:   2 shard servers behind a FederationRouter, itself served by a
//           net::CatalogServer (clients talk to the router port and cannot
//           tell it from a catalog port);
//   fed4:   the same with 4 shards.
//
// Each topology is preloaded with the same generated corpus (the
// federations through their router's own wire ingest path, so placement
// and gid assignment are the production ones), then measured under the
// same closed-loop read mix of scatter-gather queries and point fetches.
//
// Correctness is validated in-bench before anything is timed:
//   * result-set oracle: for every distinct query, the id set answered by
//     each federation maps (gid -> preloaded document name) to exactly the
//     name set the single node answers — nothing dropped, nothing invented;
//   * merge byte-oracle: each federation's merged query response must be
//     byte-identical to the page rebuilt from its own shards' direct
//     responses (lids remapped to gids, k-way merged ascending, wrapped in
//     the canonical envelope) — the acceptance check that the router
//     mangles zero frames.
//
// With --gate (CI fed-smoke) the correctness checks fail the run
// unconditionally; the throughput check is tiered by the machine's core
// count, because scatter-gather adds a network hop per request and only
// pays for itself when shards have cores to run on (EXPERIMENTS.md E17):
//   >= 6 cores: fed4 >= 2.5x single;  3-5 cores: best fed >= 1.3x single;
//   <  3 cores: overhead-bound — fed2 >= 0.40x, fed4 >= 0.35x single.
// Writes BENCH_fed.json (override with --json=path).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_stamp.hpp"
#include "core/catalog.hpp"
#include "core/dispatcher.hpp"
#include "core/service.hpp"
#include "fed/merge.hpp"
#include "fed/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/lead_schema.hpp"
#include "workload/query_gen.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace {

using namespace hxrc;
using Clock = std::chrono::steady_clock;

struct BenchConfig {
  std::size_t preload = 96;
  std::size_t distinct_queries = 24;
  std::size_t distinct_fetches = 24;
  std::size_t clients = 4;
  std::size_t requests_per_client = 800;
  std::string json_path = "BENCH_fed.json";
  bool gate = false;
};

std::string ingest_request(const xml::Document& doc, const std::string& name) {
  return "<catalogRequest type=\"ingest\" version=\"1\" name=\"" + name +
         "\" user=\"bench\">" + xml::write(doc) + "</catalogRequest>";
}

std::string fetch_request(std::uint64_t id) {
  return "<catalogRequest type=\"fetch\" version=\"1\" objectID=\"" +
         std::to_string(id) + "\"/>";
}

// ---------------------------------------------------------------------------
// Topologies.

struct SingleNode {
  explicit SingleNode(const BenchConfig& config)
      : schema(workload::lead_schema()) {
    core::CatalogConfig catalog_config;
    catalog_config.shred.auto_define_dynamic = true;
    // The response cache is off in every topology (shards too): repeated
    // queries would otherwise be served inline from the single node's L2 at
    // echo-server speed and the comparison would measure the cache, not the
    // query pipeline. bench_cache owns that measurement.
    catalog_config.cache.enabled = false;
    catalog = std::make_unique<core::MetadataCatalog>(
        schema, workload::lead_annotations(), catalog_config);
    workload::DocumentGenerator generator;
    for (std::size_t i = 0; i < config.preload; ++i) {
      catalog->ingest(generator.generate(i), "preload-" + std::to_string(i),
                      "bench");
    }
    core::DispatcherConfig dispatch;
    dispatch.workers = 4;
    dispatcher = std::make_unique<core::ServiceDispatcher>(*catalog, dispatch);
    net::ServerConfig server_config;
    server_config.event_threads = 2;
    server = std::make_unique<net::CatalogServer>(*dispatcher, server_config);
    server->start();
  }

  xml::Schema schema;
  std::unique_ptr<core::MetadataCatalog> catalog;
  std::unique_ptr<core::ServiceDispatcher> dispatcher;
  std::unique_ptr<net::CatalogServer> server;
};

struct Shard {
  Shard()
      : schema(workload::lead_schema()),
        catalog(schema, workload::lead_annotations(),
                [] {
                  core::CatalogConfig config;
                  config.shred.auto_define_dynamic = true;
                  config.cache.enabled = false;
                  return config;
                }()),
        dispatcher(catalog,
                   [] {
                     core::DispatcherConfig config;
                     config.workers = 2;
                     config.max_queue = 256;
                     return config;
                   }()) {
    net::ServerConfig config;
    config.port = 0;
    config.event_threads = 1;
    server = std::make_unique<net::CatalogServer>(dispatcher, config);
    server->start();
  }

  xml::Schema schema;
  core::MetadataCatalog catalog;
  core::ServiceDispatcher dispatcher;
  std::unique_ptr<net::CatalogServer> server;
};

struct Federation {
  Federation(const BenchConfig& config, std::uint32_t nshards)
      : shard_count(nshards) {
    fed::RouterOptions options;
    for (std::uint32_t i = 0; i < nshards; ++i) {
      shards.push_back(std::make_unique<Shard>());
      fed::ShardEndpoint endpoint;
      endpoint.primary_port = shards.back()->server->port();
      options.shards.push_back(endpoint);
    }
    options.workers = 4;
    options.io_timeout_ms = 10000;
    options.probe_interval_ms = 0;
    router = std::make_unique<fed::FederationRouter>(std::move(options));
    net::ServerConfig server_config;
    server_config.event_threads = 2;
    front = std::make_unique<net::CatalogServer>(*router, server_config);
    front->start();

    // Preload the identical corpus through the router's own wire ingest
    // path; record each document's assigned gid for the fetch mix and the
    // result-set oracle.
    net::BlockingClient client("127.0.0.1", front->port());
    workload::DocumentGenerator generator;
    for (std::size_t i = 0; i < config.preload; ++i) {
      const std::string name = "preload-" + std::to_string(i);
      const std::string response =
          client.call(ingest_request(generator.generate(i), name));
      const fed::ParsedResponse parsed = fed::parse_response(response);
      if (!parsed.ok) {
        std::fprintf(stderr, "federated preload failed: %s\n", response.c_str());
        std::exit(1);
      }
      const std::uint64_t gid = std::stoull(std::string(
          xml::parse(response).root->child_text("objectID")));
      gid_by_name[name] = gid;
      gids.push_back(gid);
    }
  }

  void stop() {
    front->drain();
    for (auto& shard : shards) shard->server->drain();
  }

  std::uint16_t port() const { return front->port(); }

  std::uint32_t shard_count;
  std::vector<std::unique_ptr<Shard>> shards;
  std::unique_ptr<fed::FederationRouter> router;
  std::unique_ptr<net::CatalogServer> front;
  std::map<std::string, std::uint64_t> gid_by_name;
  std::vector<std::uint64_t> gids;
};

// ---------------------------------------------------------------------------
// Request mixes. Queries are shared text; fetches are per-topology because
// ids differ (sequential locally, gid-spaced federated).

std::vector<std::string> build_queries(const BenchConfig& config, bool ids_only) {
  std::vector<std::string> queries;
  workload::QueryGenerator query_gen;
  for (std::uint64_t q = 0; q < config.distinct_queries; ++q) {
    std::string wire = core::query_to_xml(query_gen.generate(q));
    if (ids_only) {
      const auto pos = wire.find("type=\"query\"");
      wire.replace(pos, std::string("type=\"query\"").size(), "type=\"queryIds\"");
    }
    queries.push_back(std::move(wire));
  }
  return queries;
}

std::vector<std::string> build_mix(const BenchConfig& config,
                                   const std::vector<std::uint64_t>& ids) {
  std::vector<std::string> requests = build_queries(config, /*ids_only=*/false);
  for (std::size_t f = 0; f < config.distinct_fetches; ++f) {
    requests.push_back(fetch_request(ids[(f * 7) % ids.size()]));
  }
  return requests;
}

// ---------------------------------------------------------------------------
// Closed loop (same shape as bench_cache: each client cycles the pool).

struct PhaseResult {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
  util::LatencyHistogram latency;
};

void run_phase(std::uint16_t port, const std::vector<std::string>& requests,
               const BenchConfig& config, PhaseResult& result) {
  std::atomic<std::uint64_t> errors{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      net::BlockingClient client("127.0.0.1", port);
      for (std::size_t i = 0; i < config.requests_per_client; ++i) {
        const std::string& request = requests[(c * 13 + i) % requests.size()];
        const Clock::time_point sent = Clock::now();
        const std::string response = client.call(request);
        const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - sent);
        result.latency.record(static_cast<std::uint64_t>(micros.count()));
        if (response.find("status=\"ok\"") == std::string::npos) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  result.responses = config.clients * config.requests_per_client;
  result.errors = errors.load();
}

double throughput(const PhaseResult& result) {
  return result.elapsed_s > 0
             ? static_cast<double>(result.responses) / result.elapsed_s
             : 0.0;
}

void print_phase(const char* name, const PhaseResult& result) {
  std::printf("%s: responses=%llu errors=%llu elapsed=%.2fs throughput=%.0f resp/s "
              "p50=%lluus p99=%lluus mean=%lluus\n",
              name, static_cast<unsigned long long>(result.responses),
              static_cast<unsigned long long>(result.errors), result.elapsed_s,
              throughput(result),
              static_cast<unsigned long long>(result.latency.percentile_micros(0.50)),
              static_cast<unsigned long long>(result.latency.percentile_micros(0.99)),
              static_cast<unsigned long long>(result.latency.mean_micros()));
}

// ---------------------------------------------------------------------------
// Oracles.

std::vector<std::uint64_t> ids_of(const std::string& response) {
  const fed::ParsedResponse parsed = fed::parse_response(response);
  if (!parsed.ok) return {};
  return fed::parse_query_payload(parsed.payload, /*ids_only=*/true).ids;
}

/// Every federation must answer exactly the single node's result names for
/// every distinct query. Returns the number of mismatching queries.
std::size_t check_result_sets(const BenchConfig& config, SingleNode& single,
                              Federation& federation) {
  std::size_t mismatches = 0;
  std::map<std::uint64_t, std::string> name_by_gid;
  for (const auto& [name, gid] : federation.gid_by_name) name_by_gid[gid] = name;

  net::BlockingClient single_client("127.0.0.1", single.server->port());
  net::BlockingClient fed_client("127.0.0.1", federation.port());
  const std::vector<std::string> queries = build_queries(config, /*ids_only=*/true);
  for (const std::string& query : queries) {
    std::set<std::string> expected;
    for (const std::uint64_t id : ids_of(single_client.call(query))) {
      // Single-node preload ids are sequential: id i is "preload-i".
      expected.insert("preload-" + std::to_string(id));
    }
    std::set<std::string> actual;
    bool unknown_gid = false;
    for (const std::uint64_t gid : ids_of(fed_client.call(query))) {
      const auto it = name_by_gid.find(gid);
      if (it == name_by_gid.end()) {
        unknown_gid = true;
      } else {
        actual.insert(it->second);
      }
    }
    if (unknown_gid || actual != expected) {
      ++mismatches;
      std::printf("RESULT-SET MISMATCH (fed%u, %zu vs %zu rows): %.80s...\n",
                  federation.shard_count, actual.size(), expected.size(),
                  query.c_str());
    }
  }
  return mismatches;
}

/// The router's merged `query` response must be byte-identical to the page
/// rebuilt from the shards' own responses. Returns mismatch count.
std::size_t check_merge_bytes(const BenchConfig& config, Federation& federation) {
  std::size_t mismatches = 0;
  net::BlockingClient fed_client("127.0.0.1", federation.port());
  std::vector<std::unique_ptr<net::BlockingClient>> shard_clients;
  for (const auto& shard : federation.shards) {
    shard_clients.push_back(std::make_unique<net::BlockingClient>(
        "127.0.0.1", shard->server->port()));
  }

  const std::vector<std::string> queries = build_queries(config, /*ids_only=*/false);
  for (const std::string& query : queries) {
    std::vector<std::pair<std::uint64_t, std::string>> rows;
    std::uint64_t version = 0;
    bool shard_error = false;
    for (std::uint32_t s = 0; s < federation.shard_count; ++s) {
      // Keep the response alive while spans view into it.
      const std::string shard_response = shard_clients[s]->call(query);
      const fed::ParsedResponse parsed = fed::parse_response(shard_response);
      if (!parsed.ok) {
        shard_error = true;
        break;
      }
      version = std::max(version, parsed.version);
      for (const fed::ResultSpan& span :
           fed::parse_query_payload(parsed.payload, /*ids_only=*/false).results) {
        rows.emplace_back(fed::gid_of(span.lid, s, federation.shard_count),
                          std::string(span.body));
      }
    }
    std::sort(rows.begin(), rows.end());
    std::string expected = "<results>";
    for (const auto& [gid, body] : rows) {
      expected += "<result objectID=\"" + std::to_string(gid) + "\">" + body +
                  "</result>";
    }
    expected += "</results>";
    const std::string actual = fed_client.call(query);
    const std::string expected_full = fed::ok_envelope(version, expected);
    if (shard_error || actual != expected_full) {
      ++mismatches;
      std::printf("MERGE BYTE MISMATCH (fed%u): %.80s...\n",
                  federation.shard_count, query.c_str());
      std::size_t d = 0;
      while (d < actual.size() && d < expected_full.size() &&
             actual[d] == expected_full[d]) ++d;
      std::printf("  first diff at %zu\n  actual:   ...%.160s\n  expected: ...%.160s\n",
                  d, actual.c_str() + (d > 40 ? d - 40 : 0),
                  expected_full.c_str() + (d > 40 ? d - 40 : 0));
    }
  }
  return mismatches;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_fed [--gate] [--clients N] [--requests N]\n"
               "                 [--preload N] [--json=path]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--gate") {
      config.gate = true;
    } else if (arg == "--clients") {
      config.clients = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--requests") {
      config.requests_per_client = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg == "--preload") {
      config.preload = static_cast<std::size_t>(std::atol(value().c_str()));
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else {
      usage();
    }
  }

  SingleNode single(config);
  Federation fed2(config, 2);
  Federation fed4(config, 4);

  // Correctness before speed: result-set and merge-byte oracles over every
  // distinct query, against the live topologies.
  const std::size_t set_mismatches =
      check_result_sets(config, single, fed2) +
      check_result_sets(config, single, fed4);
  const std::size_t byte_mismatches =
      check_merge_bytes(config, fed2) + check_merge_bytes(config, fed4);
  std::printf("oracle: result_set_mismatches=%zu merge_byte_mismatches=%zu\n",
              set_mismatches, byte_mismatches);

  // Per-topology request mixes: identical queries, topology-local fetch ids.
  std::vector<std::uint64_t> single_ids;
  for (std::size_t i = 0; i < config.preload; ++i) single_ids.push_back(i);
  const std::vector<std::string> single_mix = build_mix(config, single_ids);
  const std::vector<std::string> fed2_mix = build_mix(config, fed2.gids);
  const std::vector<std::string> fed4_mix = build_mix(config, fed4.gids);

  PhaseResult single_result;
  run_phase(single.server->port(), single_mix, config, single_result);
  PhaseResult fed2_result;
  run_phase(fed2.port(), fed2_mix, config, fed2_result);
  PhaseResult fed4_result;
  run_phase(fed4.port(), fed4_mix, config, fed4_result);

  print_phase("single", single_result);
  print_phase("fed2  ", fed2_result);
  print_phase("fed4  ", fed4_result);

  const double single_rps = std::max(throughput(single_result), 1e-9);
  const double ratio2 = throughput(fed2_result) / single_rps;
  const double ratio4 = throughput(fed4_result) / single_rps;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const char* tier = cores >= 6 ? "scale" : cores >= 3 ? "partial" : "overhead";
  std::printf("cores=%u tier=%s fed2/single=%.2fx fed4/single=%.2fx\n", cores,
              tier, ratio2, ratio4);

  {
    std::ofstream out(config.json_path);
    out << "[\n  {\"name\": \"fed/closed_loop/" << config.clients << "x"
        << config.requests_per_client << "\""
        << ", \"preload\": " << config.preload
        << ", \"distinct_requests\": " << single_mix.size()
        << ", \"cores\": " << cores
        << ", \"tier\": \"" << tier << "\""
        << ", \"single_rps\": " << throughput(single_result)
        << ", \"single_p50_us\": " << single_result.latency.percentile_micros(0.50)
        << ", \"single_p99_us\": " << single_result.latency.percentile_micros(0.99)
        << ", \"fed2_rps\": " << throughput(fed2_result)
        << ", \"fed2_p50_us\": " << fed2_result.latency.percentile_micros(0.50)
        << ", \"fed2_p99_us\": " << fed2_result.latency.percentile_micros(0.99)
        << ", \"fed4_rps\": " << throughput(fed4_result)
        << ", \"fed4_p50_us\": " << fed4_result.latency.percentile_micros(0.50)
        << ", \"fed4_p99_us\": " << fed4_result.latency.percentile_micros(0.99)
        << ", \"fed2_ratio\": " << ratio2
        << ", \"fed4_ratio\": " << ratio4
        << ", \"errors\": "
        << (single_result.errors + fed2_result.errors + fed4_result.errors)
        << ", \"result_set_mismatches\": " << set_mismatches
        << ", \"merge_byte_mismatches\": " << byte_mismatches
        << ", " << hxrc::benchx::bench_stamp_fields()
        << "}\n]\n";
  }

  fed4.stop();
  fed2.stop();
  single.server->drain();

  const bool correct = set_mismatches == 0 && byte_mismatches == 0 &&
                       single_result.errors == 0 && fed2_result.errors == 0 &&
                       fed4_result.errors == 0;
  if (!config.gate) return correct ? 0 : 1;

  bool pass = true;
  const auto fail = [&pass](const char* what) {
    std::printf("GATE FAIL: %s\n", what);
    pass = false;
  };
  if (set_mismatches != 0) fail("federated result sets differ from single node");
  if (byte_mismatches != 0) fail("merged responses not byte-identical to shard pages");
  if (single_result.errors != 0 || fed2_result.errors != 0 ||
      fed4_result.errors != 0) {
    fail("error responses during measured phases");
  }
  // Throughput tiers (EXPERIMENTS.md E17): scatter-gather only pays when
  // shards have cores; below 3 cores the gate bounds the routing overhead
  // instead of demanding speedup.
  if (cores >= 6) {
    if (ratio4 < 2.5) fail("fed4 < 2.5x single on a >=6 core machine");
  } else if (cores >= 3) {
    if (std::max(ratio2, ratio4) < 1.3) fail("best federation < 1.3x single on a 3-5 core machine");
  } else {
    if (ratio2 < 0.40) fail("fed2 < 0.40x single (routing overhead bound)");
    if (ratio4 < 0.35) fail("fed4 < 0.35x single (routing overhead bound)");
  }
  std::printf("GATE %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
