// E6 — schema-level global ordering vs per-document ordering ([19], §2/§6).
//
// The hybrid approach computes the global ordering ONCE per schema, which
// is legal because multi-instance and recursive elements are confined to
// metadata attributes. Systems that order at the document level (global /
// local / Dewey orderings of [19]) pay per document at ingest and pay
// renumbering on mid-document inserts.
//
// Benchmarks:
//   Ingest/schema_level     hybrid ingest (per-document ordering cost: none)
//   Ingest/document_level   hybrid ingest + per-document order assignment
//   Insert/schema_level     add_attribute on an existing object (append rows)
//   Insert/document_level   the same insert + tail renumbering of the
//                           document-level global order
// Expectation: ingest overhead is modest but nonzero; the insert gap is
// large and grows with document size (renumbering is O(tail)).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "xml/parser.hpp"

namespace {

using namespace hxrc;

/// Document-level global ordering ([19]'s global scheme): assigns pre-order
/// ranks to every element of every document and supports mid-document
/// inserts by renumbering the tail.
class DocumentLevelOrderer {
 public:
  /// Assigns orders for a new document; returns its handle.
  std::size_t index_document(const xml::Node& root) {
    std::vector<std::int64_t> orders;
    std::int64_t next = 0;
    assign(root, orders, next);
    documents_.push_back(std::move(orders));
    return documents_.size() - 1;
  }

  /// Inserts `subtree_size` nodes at `position`: every later node is
  /// renumbered — the update cost [19] mitigates with gaps but cannot
  /// eliminate.
  void insert(std::size_t doc, std::size_t position, std::int64_t subtree_size) {
    std::vector<std::int64_t>& orders = documents_[doc];
    for (std::size_t i = position; i < orders.size(); ++i) {
      orders[i] += subtree_size;
    }
    for (std::int64_t k = 0; k < subtree_size; ++k) {
      orders.insert(orders.begin() + static_cast<std::ptrdiff_t>(position),
                    static_cast<std::int64_t>(position) + subtree_size - 1 - k);
    }
  }

  std::size_t node_count(std::size_t doc) const { return documents_[doc].size(); }

 private:
  static void assign(const xml::Node& node, std::vector<std::int64_t>& orders,
                     std::int64_t& next) {
    orders.push_back(next++);
    for (const auto& child : node.children()) {
      if (child->is_element()) assign(*child, orders, next);
    }
  }

  std::vector<std::vector<std::int64_t>> documents_;
};

void ingest_bench(benchmark::State& state, bool document_level) {
  const auto& docs = benchx::corpus(300);
  static xml::Schema schema = workload::lead_schema();
  std::size_t total = 0;
  for (auto _ : state) {
    core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                  benchx::auto_define_config());
    DocumentLevelOrderer orderer;
    for (const auto& doc : docs) {
      catalog.ingest(doc, "d", "bench");
      if (document_level) orderer.index_document(*doc.root);
    }
    total += docs.size();
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
}

void insert_bench(benchmark::State& state, bool document_level) {
  // One object with many themes; each iteration inserts one more theme.
  static xml::Schema schema = workload::lead_schema();
  core::MetadataCatalog catalog(schema, workload::lead_annotations(),
                                benchx::auto_define_config());
  const core::ObjectId object =
      catalog.ingest_xml(workload::fig3_document(), "victim", "bench");

  DocumentLevelOrderer orderer;
  const xml::Document base = xml::parse(workload::fig3_document());
  const std::size_t doc_handle = orderer.index_document(*base.root);

  const xml::NodePtr theme = xml::parse_fragment(
      "<theme><themekt>CF NetCDF</themekt><themekey>air_temperature</themekey></theme>");
  const auto subtree = static_cast<std::int64_t>(theme->subtree_element_count());

  std::size_t inserts = 0;
  for (auto _ : state) {
    catalog.add_attribute(object, "data/idinfo/keywords/theme", *theme, "bench");
    if (document_level) {
      // Insert in the middle: everything after the keywords section shifts.
      orderer.insert(doc_handle, orderer.node_count(doc_handle) / 2, subtree);
    }
    ++inserts;
  }
  state.counters["inserts/s"] =
      benchmark::Counter(static_cast<double>(inserts), benchmark::Counter::kIsRate);
  state.counters["doc_nodes"] = static_cast<double>(orderer.node_count(doc_handle));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("E6/Ingest/schema_level", ingest_bench, false)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E6/Ingest/document_level", ingest_bench, true)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E6/Insert/schema_level", insert_bench, false)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("E6/Insert/document_level", insert_bench, true)
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
