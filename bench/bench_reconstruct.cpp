// E5 — response construction (§5).
//
// Rebuilds result sets of 1..100 documents from a 500-document corpus.
// Expectation: clob wins trivially (stored verbatim); the hybrid's
// set-based CLOB-plus-ordering assembly lands close behind; edge must
// reassemble the whole node tree; inlining re-joins its fragment tables and
// runs the external tagger — the §5 claim is that hybrid avoids exactly
// those two costs while still supporting shredded queries (E3).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace hxrc;
using baselines::BackendKind;

constexpr BackendKind kKinds[] = {BackendKind::kHybrid, BackendKind::kInlining,
                                  BackendKind::kEdge, BackendKind::kClob};
constexpr std::size_t kCorpus = 500;

void reconstruct_bench(benchmark::State& state, BackendKind kind) {
  const auto result_size = static_cast<std::size_t>(state.range(0));
  baselines::MetadataBackend& backend = benchx::loaded_backend(kind, kCorpus);
  std::size_t bytes = 0;
  std::size_t documents = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < result_size; ++i) {
      // Spread the result set across the corpus.
      const auto id = static_cast<core::ObjectId>((i * 37) % kCorpus);
      bytes += backend.reconstruct(id).size();
    }
    documents += result_size;
  }
  state.counters["docs/s"] =
      benchmark::Counter(static_cast<double>(documents), benchmark::Counter::kIsRate);
  benchmark::DoNotOptimize(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  for (const BackendKind kind : kKinds) {
    const std::string name =
        "E5/Reconstruct/" + std::string(baselines::to_string(kind));
    for (const long k : {1L, 10L, 100L}) {
      benchmark::RegisterBenchmark(name.c_str(), reconstruct_bench, kind)
          ->Arg(k)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
