// E3 — query latency across backends (§4 / Fig. 4, §6).
//
// Three query shapes on corpora of 200 and 1000 documents:
//   simple   one dynamic parameter predicate;
//   theme    one structural multi-instance keyword predicate;
//   nested   the paper's grid + grid-stretching sub-attribute query.
// Expectation: hybrid and inlining are close on `simple`; on `nested` the
// hybrid's inverted list beats the edge table's per-level self-joins and
// the recursive-fragment joins of inlining; clob is orders of magnitude
// slower everywhere (it re-parses the corpus per query).
#include <benchmark/benchmark.h>

#include "baselines/edge_backend.hpp"
#include "bench_common.hpp"
#include "core/path_query.hpp"

namespace {

using namespace hxrc;
using baselines::BackendKind;

constexpr BackendKind kKinds[] = {BackendKind::kHybrid, BackendKind::kInlining,
                                  BackendKind::kEdge, BackendKind::kClob};

core::ObjectQuery simple_query() {
  return workload::dynamic_param_query("grid", "ARPS", "dx",
                                       workload::parameter_value("dx", 1));
}

core::ObjectQuery theme_query() {
  return workload::theme_keyword_query("air_temperature");
}

core::ObjectQuery nested_query() { return workload::paper_example_query(); }

void query_bench(benchmark::State& state, BackendKind kind,
                 core::ObjectQuery (*make_query)()) {
  const auto n = static_cast<std::size_t>(state.range(0));
  baselines::MetadataBackend& backend = benchx::loaded_backend(kind, n);
  const core::ObjectQuery query = make_query();
  std::size_t hits = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    hits = backend.query(query).size();
    benchmark::DoNotOptimize(hits);
    ++runs;
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["hits"] = static_cast<double>(hits);
  // Self-join work: the edge baseline counts its parent/child probes —
  // the cost the paper's inverted lists avoid (§4/§6).
  if (const auto* edge = dynamic_cast<const baselines::EdgeBackend*>(&backend)) {
    state.counters["probes"] = static_cast<double>(edge->last_query_probes());
  }
}

/// Rewriting overhead of the §4 path-to-query translation (the cost a
/// client pays to keep writing XPath).
void translate_bench(benchmark::State& state) {
  const core::Partition& partition = benchx::lead_partition();
  constexpr std::string_view kPath =
      "//detailed[enttyp/enttypl='grid' and enttyp/enttypds='ARPS']"
      "[attr[attrlabl='dx' and attrdefs='ARPS' and attrv=1000]]"
      "[attr[attrlabl='grid-stretching' and attrdefs='ARPS']"
      "[attr[attrlabl='dzmin' and attrv=100]]]";
  std::size_t runs = 0;
  for (auto _ : state) {
    const core::ObjectQuery query = core::path_to_query(partition, kPath);
    benchmark::DoNotOptimize(query.attributes().size());
    ++runs;
  }
  state.counters["translations/s"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}

}  // namespace

int main(int argc, char** argv) {
  struct Shape {
    const char* name;
    core::ObjectQuery (*make)();
  };
  const Shape shapes[] = {{"simple", simple_query},
                          {"theme", theme_query},
                          {"nested", nested_query}};
  for (const auto& shape : shapes) {
    for (const BackendKind kind : kKinds) {
      const std::string name =
          "E3/Query/" + std::string(shape.name) + "/" +
          std::string(baselines::to_string(kind));
      for (const long n : {200L, 1000L}) {
        benchmark::RegisterBenchmark(name.c_str(), query_bench, kind, shape.make)
            ->Arg(n)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
  benchmark::RegisterBenchmark("E3/PathTranslate", translate_bench)
      ->Unit(benchmark::kMicrosecond);
  return hxrc::benchx::run_benchmarks(argc, argv, "BENCH_query.json");
}
