// Provenance stamp for every BENCH_*.json the benches emit: the git SHA and
// build type the binary was compiled from (CMake configure-time defines) and
// the UTC wall-clock time of the run. A bench number without these three
// fields cannot be compared against anything later; with them, any two JSON
// files can be lined up ("same SHA, Release vs Release, three weeks apart").
//
// Deliberately does not include benchmark/benchmark.h: the standalone
// closed-loop drivers (bench_net, bench_cache, bench_fed) stamp their
// hand-written JSON through the same helper.
#pragma once

#include <ctime>
#include <string>

#ifndef HXRC_GIT_SHA
#define HXRC_GIT_SHA "unknown"
#endif
#ifndef HXRC_BUILD_TYPE
#define HXRC_BUILD_TYPE "unknown"
#endif

namespace hxrc::benchx {

/// ISO-8601 UTC timestamp, e.g. "2026-08-08T14:03:21Z".
inline std::string bench_timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  ::gmtime_r(&now, &parts);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &parts);
  return buffer;
}

/// The stamp as ready-to-splice JSON object fields (no surrounding braces):
///   "git_sha": "abc1234", "build_type": "Release", "timestamp": "...Z"
inline std::string bench_stamp_fields() {
  std::string out;
  out += "\"git_sha\": \"" HXRC_GIT_SHA "\"";
  out += ", \"build_type\": \"" HXRC_BUILD_TYPE "\"";
  out += ", \"timestamp\": \"";
  out += bench_timestamp_utc();
  out += "\"";
  return out;
}

}  // namespace hxrc::benchx
