// E13 — durability overhead and recovery speed.
//
// The headline gate: E1-style serial ingest with the WAL attached at the
// default group-commit settings must stay within 1.3× of the WAL-off
// catalog. Group commit is what makes that possible — per-record write(2)
// into the page cache, fsync amortized over fsync_every_n records / the
// fsync_every_ms timer. `WalNoFsync` isolates the fsync share from the
// serialization share of the overhead. The recovery benches measure the two
// restart paths: replaying a pure WAL tail and loading a snapshot.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "storage/recovery.hpp"

namespace {

using namespace hxrc;

std::string bench_dir() {
  return (std::filesystem::temp_directory_path() / "hxrc_bench_durability").string();
}

core::MetadataCatalog make_catalog(const xml::Schema& schema) {
  return core::MetadataCatalog(schema, workload::lead_annotations(),
                               benchx::auto_define_config());
}

/// The ≤1.3× overhead gate. One benchmark measures BOTH legs — an
/// E1-equivalent serial ingest with the WAL off, then the same ingest with
/// the durability subsystem attached — alternating every iteration, so
/// machine-speed drift between benchmarks (noisy-neighbor CPU steal is
/// severe on small VMs) hits the numerator and denominator equally. The
/// ratio is reported as the `overhead_x` counter. Directory setup, recovery
/// open, and close are untimed (per-restart costs; Recover/* measures
/// them); the WAL-on leg ends at flush() — the point where every record is
/// acknowledged durable. `sync=false` legs isolate the fsync share.
void wal_overhead(benchmark::State& state) {
  static const xml::Schema schema = workload::lead_schema();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& docs = benchx::corpus(n);
  const std::string dir = bench_dir();
  using Clock = std::chrono::steady_clock;

  double off_sec = 0, on_sec = 0, nofsync_sec = 0;
  // Per-iteration leg times; the reported overhead is the ratio of their
  // medians. The legs of one iteration run back-to-back (~tens of ms
  // apart), so slow machine-speed drift cancels within a sample, and taking
  // the median per leg BEFORE the ratio discards the iterations where a
  // CPU-steal burst landed on exactly one leg — those would corrupt a
  // per-iteration ratio in either direction.
  std::vector<double> off_leg, on_leg, nofsync_leg;
  std::uint64_t fsyncs = 0;
  std::uint64_t wal_bytes = 0;

  // The first document is ingested (and flushed) untimed: its fsync also
  // commits the freshly created WAL file's inode and directory entry to the
  // journal — a per-restart cost the Recover benches own, not steady-state
  // ingest overhead. Both legs skip doc 0 symmetrically.
  auto timed_ingest = [&](core::MetadataCatalog& catalog,
                          storage::DurableCatalog* durable) {
    catalog.ingest(docs[0], "doc-0", "bench");
    if (durable != nullptr) durable->flush();
    const auto t0 = Clock::now();
    for (std::size_t i = 1; i < docs.size(); ++i) {
      catalog.ingest(docs[i], "doc-" + std::to_string(i), "bench");
    }
    if (durable != nullptr) durable->flush();
    benchmark::DoNotOptimize(catalog.object_count());
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Leg 0 = WAL off, 1 = WAL on (fsync), 2 = WAL on (no fsync).
  auto run_leg = [&](int which) {
    if (which == 0) {
      core::MetadataCatalog catalog = make_catalog(schema);
      return timed_ingest(catalog, nullptr);
    }
    const bool fsync = which == 1;
    std::filesystem::remove_all(dir);
    core::MetadataCatalog catalog = make_catalog(schema);
    storage::DurabilityConfig config;
    config.data_dir = dir;
    config.wal.sync = fsync;  // default group-commit cadence otherwise
    storage::DurableCatalog durable(catalog, config);
    const double sec = timed_ingest(catalog, &durable);
    if (fsync) {
      fsyncs = durable.metrics().wal_fsyncs.load(std::memory_order_relaxed);
      wal_bytes = durable.metrics().wal_bytes.load(std::memory_order_relaxed);
    }
    durable.close();
    return sec;
  };

  int iteration = 0;
  for (auto _ : state) {
    // Rotate which leg goes first: with a fixed order, periodic
    // noisy-neighbor CPU-steal bursts can phase-lock onto one leg and bias
    // its median; rotation spreads any periodicity across all three.
    double leg_sec[3];
    const int start = iteration++ % 3;
    for (int k = 0; k < 3; ++k) {
      const int which = (start + k) % 3;
      leg_sec[which] = run_leg(which);
    }
    off_sec += leg_sec[0];
    on_sec += leg_sec[1];
    nofsync_sec += leg_sec[2];
    off_leg.push_back(leg_sec[0]);
    on_leg.push_back(leg_sec[1]);
    nofsync_leg.push_back(leg_sec[2]);
    state.SetIterationTime(leg_sec[0] + leg_sec[1] + leg_sec[2]);
  }

  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double r = static_cast<double>(off_leg.size());
  state.counters["waloff_ms"] = off_sec * 1e3 / r;
  state.counters["walon_ms"] = on_sec * 1e3 / r;
  state.counters["walnofsync_ms"] = nofsync_sec * 1e3 / r;
  state.counters["overhead_x"] = median(on_leg) / median(off_leg);
  state.counters["overhead_nofsync_x"] = median(nofsync_leg) / median(off_leg);
  state.counters["docs/s"] = static_cast<double>(docs.size() - 1) * r / on_sec;
  state.counters["fsyncs"] = static_cast<double>(fsyncs);
  state.counters["wal_mb"] = static_cast<double>(wal_bytes) / (1024.0 * 1024.0);
  std::filesystem::remove_all(dir);
}

/// Restart with a cold page cache is not modelled; what is measured is the
/// pure replay cost of a WAL holding the whole corpus.
void recover_wal_tail(benchmark::State& state) {
  static const xml::Schema schema = workload::lead_schema();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& docs = benchx::corpus(n);
  const std::string dir = bench_dir();
  std::filesystem::remove_all(dir);
  {
    core::MetadataCatalog catalog = make_catalog(schema);
    storage::DurableCatalog durable(catalog, {dir, {}});
    for (std::size_t i = 0; i < docs.size(); ++i) {
      catalog.ingest(docs[i], "doc-" + std::to_string(i), "bench");
    }
    durable.close();
  }
  std::uint64_t recovery_micros = 0;
  for (auto _ : state) {
    core::MetadataCatalog catalog = make_catalog(schema);
    storage::DurableCatalog durable(catalog, {dir, {}});
    recovery_micros = durable.recovery().recovery_micros;
    benchmark::DoNotOptimize(catalog.object_count());
    durable.close();
  }
  state.counters["recovery_ms"] = static_cast<double>(recovery_micros) / 1000.0;
  std::filesystem::remove_all(dir);
}

/// Recovery after a checkpoint: load the snapshot, replay an empty tail.
void recover_snapshot(benchmark::State& state) {
  static const xml::Schema schema = workload::lead_schema();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& docs = benchx::corpus(n);
  const std::string dir = bench_dir();
  std::filesystem::remove_all(dir);
  {
    core::MetadataCatalog catalog = make_catalog(schema);
    storage::DurableCatalog durable(catalog, {dir, {}});
    for (std::size_t i = 0; i < docs.size(); ++i) {
      catalog.ingest(docs[i], "doc-" + std::to_string(i), "bench");
    }
    durable.checkpoint();
    durable.close();
  }
  std::uint64_t recovery_micros = 0;
  for (auto _ : state) {
    core::MetadataCatalog catalog = make_catalog(schema);
    storage::DurableCatalog durable(catalog, {dir, {}});
    recovery_micros = durable.recovery().recovery_micros;
    benchmark::DoNotOptimize(catalog.object_count());
    durable.close();
  }
  state.counters["recovery_ms"] = static_cast<double>(recovery_micros) / 1000.0;
  std::filesystem::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  // The overhead gate is measured at the full E1 400-doc corpus: group
  // commit needs a steady-state ingest stream to amortize fsyncs — at tiny
  // batch sizes the single terminal flush() fsync dominates the ratio and
  // measures disk latency, not WAL overhead.
  // A fixed iteration count (not min_time) so the per-leg medians always
  // pool the same number of samples — overhead_x converges to ±0.02 at 60
  // paired samples on a noisy-neighbor VM.
  benchmark::RegisterBenchmark("E13/Ingest/Overhead", wal_overhead)
      ->Arg(400)
      ->Iterations(60)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E13/Recover/WalTail", recover_wal_tail)
      ->Arg(400)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("E13/Recover/Snapshot", recover_snapshot)
      ->Arg(400)
      ->Unit(benchmark::kMillisecond);
  return hxrc::benchx::run_benchmarks(argc, argv, "BENCH_durability.json");
}
